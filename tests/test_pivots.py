"""Unit tests for the three pivot selection strategies."""

import numpy as np
import pytest

from repro.core import Dataset, VoronoiPartitioner, get_metric
from repro.pivots import (
    FarthestPivotSelector,
    KMeansPivotSelector,
    RandomPivotSelector,
    get_pivot_selector,
)


@pytest.fixture
def clustered():
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]])
    points = np.vstack([c + rng.normal(0, 0.3, (50, 2)) for c in centers])
    return Dataset(points, name="clusters")


def select(selector, dataset, m, seed=0):
    return selector.select(dataset, m, get_metric("l2"), np.random.default_rng(seed))


class TestCommon:
    @pytest.mark.parametrize("name", ["random", "farthest", "kmeans"])
    def test_shape(self, name, clustered):
        pivots = select(get_pivot_selector(name), clustered, 8)
        assert pivots.shape == (8, 2)

    @pytest.mark.parametrize("name", ["random", "farthest", "kmeans"])
    def test_deterministic_under_seed(self, name, clustered):
        a = select(get_pivot_selector(name), clustered, 6, seed=3)
        b = select(get_pivot_selector(name), clustered, 6, seed=3)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", ["random", "farthest", "kmeans"])
    def test_too_many_pivots_rejected(self, name, clustered):
        with pytest.raises(ValueError):
            select(get_pivot_selector(name), clustered, len(clustered) + 1)

    def test_unknown_selector(self):
        with pytest.raises(ValueError, match="unknown pivot selector"):
            get_pivot_selector("pca")

    @pytest.mark.parametrize("name", ["random", "farthest", "kmeans"])
    def test_counts_distances(self, name, clustered):
        metric = get_metric("l2")
        get_pivot_selector(name).select(clustered, 5, metric, np.random.default_rng(0))
        assert metric.pairs_computed > 0


class TestRandom:
    def test_pivots_are_dataset_objects(self, clustered):
        pivots = select(RandomPivotSelector(), clustered, 5)
        for pivot in pivots:
            assert any(np.allclose(pivot, p) for p in clustered.points)

    def test_best_of_t_improves_spread(self, clustered):
        """More candidate sets can only raise the winning pairwise-sum score."""
        scores = {}
        for t in (1, 8):
            pivots = select(RandomPivotSelector(num_candidate_sets=t), clustered, 6)
            scores[t] = get_metric("l2").pairwise_sum(pivots)
        assert scores[8] >= scores[1]

    def test_rejects_zero_sets(self):
        with pytest.raises(ValueError):
            RandomPivotSelector(num_candidate_sets=0)


class TestFarthest:
    def test_picks_extreme_objects(self, clustered):
        """Farthest selection lands on the cluster extremes (outlier affinity)."""
        pivots = select(FarthestPivotSelector(sample_size=0), clustered, 4)
        # the 4 pivots should land in 4 different corners-ish: pairwise far
        dmin = min(
            np.linalg.norm(pivots[i] - pivots[j])
            for i in range(4)
            for j in range(i + 1, 4)
        )
        assert dmin > 5.0

    def test_no_duplicate_pivots(self, clustered):
        pivots = select(FarthestPivotSelector(sample_size=0), clustered, 10)
        assert np.unique(pivots, axis=0).shape[0] == 10

    def test_produces_skewed_partitions_vs_random(self):
        """Table 2's shape: farthest selection has larger size deviation."""
        rng = np.random.default_rng(1)
        # clusters plus a few extreme outliers
        points = np.vstack(
            [rng.normal(0, 1, (400, 2)), rng.normal(0, 1, (5, 2)) * 40]
        )
        data = Dataset(points)
        devs = {}
        for name in ("random", "farthest"):
            pivots = select(get_pivot_selector(name), data, 12, seed=5)
            assignment = VoronoiPartitioner(pivots, get_metric("l2")).assign(data)
            devs[name] = assignment.counts().std()
        assert devs["farthest"] > devs["random"]


class TestKMeans:
    def test_centers_near_true_clusters(self, clustered):
        pivots = select(KMeansPivotSelector(sample_size=0), clustered, 4)
        true_centers = np.array([[0, 0], [10, 0], [0, 10], [10, 10]], dtype=float)
        for center in true_centers:
            assert min(np.linalg.norm(pivots - center, axis=1)) < 1.5

    def test_balanced_partitions(self, clustered):
        pivots = select(KMeansPivotSelector(sample_size=0), clustered, 4)
        assignment = VoronoiPartitioner(pivots, get_metric("l2")).assign(clustered)
        assert assignment.counts().std() < 10

    def test_sampling_limits_work(self, clustered):
        pivots = select(KMeansPivotSelector(sample_size=60), clustered, 4)
        assert pivots.shape == (4, 2)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            KMeansPivotSelector(max_iterations=0)
