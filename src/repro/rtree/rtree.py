"""The R-tree index: bulk loading, dynamic insertion, range and kNN search.

This is the index the H-BRJ baseline builds per reducer over its block of
``S``.  It provides:

* STR bulk loading (the fast path used by the join),
* classic Guttman insertion with quadratic split (dynamic use and tests),
* range search,
* best-first kNN search (Hjaltason & Samet) driven by MINDIST — the
  "traversing the R-tree with a priority queue of candidate objects and
  intermediate nodes" the paper describes for H-BRJ's reducers.

Distance accounting: object distances at leaves go through the counted
metric (they are genuine object pairs); MINDIST evaluations on rectangles do
not.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.core.distance import Metric

from .node import InternalNode, LeafNode, Node
from .rect import Rect
from .str_bulk import build_str_tree

__all__ = ["RTree"]


class RTree:
    """An in-memory R-tree over identified points.

    Parameters
    ----------
    metric:
        Counted metric used for kNN leaf scans (and MINDIST, uncounted).
    capacity:
        Maximum entries per node; nodes split at ``capacity + 1``.
    """

    def __init__(self, metric: Metric, capacity: int = 32) -> None:
        if capacity < 4:
            raise ValueError("capacity must be >= 4")
        self.metric = metric
        self.capacity = capacity
        self.root: Node | None = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- construction -------------------------------------------------------

    @classmethod
    def bulk_load(
        cls, points: np.ndarray, ids: np.ndarray, metric: Metric, capacity: int = 32
    ) -> "RTree":
        """STR bulk load (preferred for static data, e.g. H-BRJ blocks)."""
        tree = cls(metric, capacity)
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        tree.root = build_str_tree(points, np.asarray(ids, dtype=np.int64), capacity)
        tree._size = points.shape[0]
        return tree

    def insert(self, point: np.ndarray, object_id: int) -> None:
        """Guttman insert with quadratic split."""
        point = np.asarray(point, dtype=np.float64)
        self._size += 1
        if self.root is None:
            self.root = LeafNode(point.reshape(1, -1), np.array([object_id]))
            return
        split = self._insert_into(self.root, point, int(object_id))
        if split is not None:
            self.root = InternalNode([self.root, split])

    def _insert_into(self, node: Node, point: np.ndarray, object_id: int) -> Node | None:
        """Insert recursively; returns a new sibling if ``node`` split."""
        if node.is_leaf:
            node.points = np.vstack([node.points, point])
            node.ids = np.append(node.ids, object_id)
            node.refresh_rect()
            if len(node) > self.capacity:
                return self._split_leaf(node)
            return None
        child = self._choose_child(node, point)
        split = self._insert_into(child, point, object_id)
        if split is not None:
            node.children.append(split)
        node.refresh_rect()
        if len(node) > self.capacity:
            return self._split_internal(node)
        return None

    @staticmethod
    def _choose_child(node: InternalNode, point: np.ndarray) -> Node:
        """ChooseLeaf: least enlargement, ties by smaller area."""
        best = None
        best_key = None
        for child in node.children:
            grown = child.rect.expanded_to(point)
            key = (grown.area() - child.rect.area(), child.rect.area())
            if best_key is None or key < best_key:
                best, best_key = child, key
        assert best is not None
        return best

    def _split_leaf(self, node: LeafNode) -> LeafNode:
        """Quadratic split of an overfull leaf; mutates node, returns sibling."""
        left_rows, right_rows = self._quadratic_partition(
            [Rect(p, p) for p in node.points]
        )
        sibling = LeafNode(node.points[right_rows], node.ids[right_rows])
        node.points = node.points[left_rows]
        node.ids = node.ids[left_rows]
        node.refresh_rect()
        return sibling

    def _split_internal(self, node: InternalNode) -> InternalNode:
        """Quadratic split of an overfull internal node."""
        left_rows, right_rows = self._quadratic_partition(
            [child.rect for child in node.children]
        )
        children = node.children
        sibling = InternalNode([children[i] for i in right_rows])
        node.children = [children[i] for i in left_rows]
        node.refresh_rect()
        return sibling

    def _quadratic_partition(self, rects: list[Rect]) -> tuple[list[int], list[int]]:
        """Guttman's quadratic PickSeeds/PickNext over entry rectangles."""
        count = len(rects)
        min_fill = max(1, self.capacity // 3)
        # PickSeeds: pair wasting the most dead area
        worst_pair, worst_waste = (0, 1), -np.inf
        for i in range(count - 1):
            for j in range(i + 1, count):
                waste = rects[i].union(rects[j]).area() - rects[i].area() - rects[j].area()
                if waste > worst_waste:
                    worst_waste, worst_pair = waste, (i, j)
        left = [worst_pair[0]]
        right = [worst_pair[1]]
        left_rect, right_rect = rects[worst_pair[0]], rects[worst_pair[1]]
        rest = [i for i in range(count) if i not in worst_pair]
        for i in rest:
            remaining = count - len(left) - len(right)
            if len(left) + remaining <= min_fill:
                left.append(i)
                left_rect = left_rect.union(rects[i])
                continue
            if len(right) + remaining <= min_fill:
                right.append(i)
                right_rect = right_rect.union(rects[i])
                continue
            grow_left = left_rect.enlargement(rects[i])
            grow_right = right_rect.enlargement(rects[i])
            if (grow_left, left_rect.area(), len(left)) <= (
                grow_right,
                right_rect.area(),
                len(right),
            ):
                left.append(i)
                left_rect = left_rect.union(rects[i])
            else:
                right.append(i)
                right_rect = right_rect.union(rects[i])
        return left, right

    # -- queries -------------------------------------------------------------

    def range_search(self, lo: np.ndarray, hi: np.ndarray) -> list[int]:
        """Ids of all objects inside the query rectangle (inclusive)."""
        if self.root is None:
            return []
        query = Rect(np.asarray(lo, dtype=np.float64), np.asarray(hi, dtype=np.float64))
        out: list[int] = []
        stack: list[Node] = [self.root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(query):
                continue
            if node.is_leaf:
                inside = np.all(
                    (node.points >= query.lo) & (node.points <= query.hi), axis=1
                )
                out.extend(int(i) for i in node.ids[inside])
            else:
                stack.extend(node.children)
        return sorted(out)

    def knn(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Best-first k-nearest-neighbor search.

        Returns ``(ids, dists)`` ordered by (distance, id), of length
        ``min(k, len(self))``.  Nodes are expanded in MINDIST order; object
        distances are computed per leaf page through the counted metric.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if self.root is None:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        query = np.asarray(query, dtype=np.float64)
        counter = itertools.count()
        # heap entries: (distance, kind, tiebreak, payload)
        # kind 0 = node (expanded before equidistant objects), 1 = object
        heap: list[tuple[float, int, int, object]] = [
            (self.root.rect.mindist(query, self.metric), 0, next(counter), self.root)
        ]
        result_ids: list[int] = []
        result_dists: list[float] = []
        while heap and len(result_ids) < min(k, self._size):
            dist, kind, tiebreak, payload = heapq.heappop(heap)
            if kind == 1:
                result_ids.append(int(tiebreak))
                result_dists.append(dist)
                continue
            node: Node = payload  # type: ignore[assignment]
            if node.is_leaf:
                dists = self.metric.distances(query, node.points)
                for row in range(len(node)):
                    heapq.heappush(
                        heap, (float(dists[row]), 1, int(node.ids[row]), None)
                    )
            else:
                for child in node.children:
                    heapq.heappush(
                        heap,
                        (child.rect.mindist(query, self.metric), 0, next(counter), child),
                    )
        return np.array(result_ids, dtype=np.int64), np.array(result_dists, dtype=np.float64)

    # -- invariants (used by tests) --------------------------------------------

    def check_invariants(self) -> None:
        """Verify MBR containment, fanout bounds and leaf-depth uniformity."""
        if self.root is None:
            if self._size != 0:
                raise AssertionError("empty root but non-zero size")
            return
        depths: set[int] = set()
        total = 0

        def visit(node: Node, depth: int, is_root: bool) -> None:
            nonlocal total
            if len(node) > self.capacity:
                raise AssertionError("node over capacity")
            if not is_root and len(node) < 1:
                raise AssertionError("empty non-root node")
            if node.is_leaf:
                depths.add(depth)
                total += len(node)
                rect = Rect.of_points(node.points)
            else:
                for child in node.children:
                    if not (
                        np.all(node.rect.lo <= child.rect.lo)
                        and np.all(child.rect.hi <= node.rect.hi)
                    ):
                        raise AssertionError("child MBR escapes parent MBR")
                    visit(child, depth + 1, False)
                rect = Rect.union_of([c.rect for c in node.children])
            if not (
                np.allclose(rect.lo, node.rect.lo) and np.allclose(rect.hi, node.rect.hi)
            ):
                raise AssertionError("stale MBR")

        visit(self.root, 0, True)
        if len(depths) != 1:
            raise AssertionError(f"leaves at multiple depths: {sorted(depths)}")
        if total != self._size:
            raise AssertionError(f"size mismatch: counted {total}, recorded {self._size}")
