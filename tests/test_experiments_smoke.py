"""Smoke tests: every experiment function runs at tiny scale and is well-formed.

These guard the ~600 lines of sweep logic in ``repro.bench.experiments``
without paying full bench cost; shape assertions live in ``benchmarks/``.
"""

import pytest

from repro.bench import (
    ablation_cost_model_experiment,
    ablation_pruning_experiment,
    dimensionality_experiment,
    effect_of_k_experiment,
    fig6_fig7_experiment,
    scalability_experiment,
    speedup_experiment,
    table2_experiment,
    table3_experiment,
)


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")


def check(record, exhibit):
    assert record.exhibit == exhibit
    assert record.text
    assert record.data
    record.show()


def test_table2():
    check(table2_experiment(), "table2")


def test_table3():
    check(table3_experiment(), "table3")


def test_fig6_fig7():
    fig6, fig7 = fig6_fig7_experiment()
    check(fig6, "fig6")
    check(fig7, "fig7")
    assert set(fig6.data) == {"RGE", "RGR", "KGE", "KGR"}


def test_fig8():
    record = effect_of_k_experiment("forest", ks=(2, 4))
    check(record, "fig8")
    assert set(record.data) == {"H-BRJ", "PBJ", "PGBJ"}


def test_fig9():
    check(effect_of_k_experiment("osm", ks=(2, 4)), "fig9")


def test_fig8_unknown_dataset_rejected():
    with pytest.raises(ValueError, match="unknown dataset"):
        effect_of_k_experiment("mnist")


def test_fig10():
    record = dimensionality_experiment(dims=(2, 5))
    check(record, "fig10")


def test_fig11():
    record = scalability_experiment(times=(1, 3))
    check(record, "fig11")
    assert record.params["times"] == [1, 3]


def test_fig12():
    record = speedup_experiment(nodes=(4, 9))
    check(record, "fig12")


def test_ablation_pruning():
    record = ablation_pruning_experiment()
    check(record, "ablation_pruning")
    assert "both on (paper)" in record.data


def test_ablation_cost_model():
    record = ablation_cost_model_experiment()
    check(record, "ablation_cost_model")
