"""A deterministic MapReduce runtime with Hadoop-faithful accounting.

This subpackage substitutes for the paper's Hadoop 0.20.2 cluster: jobs are
described exactly as map/combine/partition/reduce (``job``), executed by a
single-process runtime that measures per-task CPU time and shuffle
records/bytes (``runtime``), and projected onto a cluster of ``N`` nodes with
one map and one reduce slot each via the scheduling model (``cluster``).
"""

from .cluster import Cluster, schedule_makespan
from .counters import Counters
from .engines import (
    DEFAULT_ENGINE,
    Executor,
    PersistentProcessExecutor,
    PersistentThreadExecutor,
    ProcessExecutor,
    SerialExecutor,
    TaskBatch,
    ThreadExecutor,
    available_engines,
    get_executor,
)
from .faults import (
    CHAOS_ENV,
    CHAOS_SEED_ENV,
    ChaosAction,
    ChaosPlan,
    ChaosRule,
    LegacyFaultInjector,
    resolve_chaos,
)
from .hdfs import DfsFile, DistributedFileSystem, SegmentChunk
from .job import BlockBufferingMapper, Context, Mapper, MapReduceJob, Reducer
from .partitioners import HashPartitioner, ModPartitioner, Partitioner
from .plan import (
    JobGraph,
    PlanCache,
    PlanError,
    PlanRun,
    PlanScheduler,
    Stage,
    StageCheckpointStore,
    StageContext,
    StageExecution,
)
from .runtime import FaultInjector, JobResult, LocalRuntime, TaskFailure
from .serialization import (
    decode_record_block,
    encode_record_block,
    estimate_bytes,
    record_count,
    shuffle_sort_key,
)
from .shuffle import (
    DEFAULT_MERGE_FAN_IN,
    DEFAULT_SHUFFLE,
    SEGMENT_CODECS,
    InMemoryShuffleStore,
    MapManifest,
    Segment,
    SegmentCodec,
    SegmentIntegrityError,
    SegmentLost,
    ShuffleStore,
    SpillShuffleStore,
    available_segment_codecs,
    available_shuffle_backends,
    get_shuffle_store,
    iter_segment,
    merged_segment_groups,
    planned_merge_passes,
    resolve_segment_codec,
    write_segment,
)
from .splits import (
    dataset_splits,
    records_from_dataset,
    split_records,
    weighted_record_chunks,
)
from .stats import JobStats, TaskStat
from .types import InputSplit, ObjectRecord, RecordBlock

__all__ = [
    "Cluster",
    "schedule_makespan",
    "Counters",
    "DistributedFileSystem",
    "DfsFile",
    "Context",
    "Mapper",
    "Reducer",
    "BlockBufferingMapper",
    "MapReduceJob",
    "Partitioner",
    "HashPartitioner",
    "ModPartitioner",
    "LocalRuntime",
    "JobResult",
    "TaskFailure",
    "FaultInjector",
    "ChaosPlan",
    "ChaosRule",
    "ChaosAction",
    "LegacyFaultInjector",
    "resolve_chaos",
    "CHAOS_ENV",
    "CHAOS_SEED_ENV",
    "JobGraph",
    "Stage",
    "StageContext",
    "StageExecution",
    "PlanRun",
    "PlanScheduler",
    "PlanCache",
    "PlanError",
    "StageCheckpointStore",
    "Executor",
    "TaskBatch",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "PersistentThreadExecutor",
    "PersistentProcessExecutor",
    "get_executor",
    "available_engines",
    "DEFAULT_ENGINE",
    "estimate_bytes",
    "record_count",
    "shuffle_sort_key",
    "encode_record_block",
    "decode_record_block",
    "ShuffleStore",
    "InMemoryShuffleStore",
    "SpillShuffleStore",
    "Segment",
    "MapManifest",
    "SegmentChunk",
    "SegmentIntegrityError",
    "SegmentLost",
    "get_shuffle_store",
    "available_shuffle_backends",
    "SegmentCodec",
    "SEGMENT_CODECS",
    "available_segment_codecs",
    "resolve_segment_codec",
    "DEFAULT_SHUFFLE",
    "write_segment",
    "iter_segment",
    "merged_segment_groups",
    "planned_merge_passes",
    "DEFAULT_MERGE_FAN_IN",
    "dataset_splits",
    "records_from_dataset",
    "split_records",
    "weighted_record_chunks",
    "JobStats",
    "TaskStat",
    "InputSplit",
    "ObjectRecord",
    "RecordBlock",
]
