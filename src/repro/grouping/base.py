"""Grouping interface: merging R-partitions into reducer groups (Section 5).

With many pivots the Voronoi cells are fine-grained — far more than there are
reducers — so PGBJ merges the cells of ``R`` into ``N`` disjoint groups, one
per reducer.  A :class:`GroupAssignment` records both directions of the
mapping and is consumed by the second job's mapper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.summary import SummaryTable

__all__ = ["GroupAssignment", "GroupingStrategy"]


@dataclass
class GroupAssignment:
    """The outcome of grouping: ``groups[g]`` lists member R-partition ids."""

    groups: list[list[int]]
    partition_to_group: dict[int, int]

    @classmethod
    def from_groups(cls, groups: list[list[int]]) -> "GroupAssignment":
        """Build the reverse map, validating disjointness."""
        partition_to_group: dict[int, int] = {}
        for group_index, members in enumerate(groups):
            for pid in members:
                if pid in partition_to_group:
                    raise ValueError(f"partition {pid} assigned to two groups")
                partition_to_group[pid] = group_index
        return cls(groups=groups, partition_to_group=partition_to_group)

    @property
    def num_groups(self) -> int:
        """Number of reducer groups ``N``."""
        return len(self.groups)

    def group_of(self, partition_id: int) -> int:
        """Group index of one R-partition."""
        return self.partition_to_group[int(partition_id)]

    def group_sizes(self, tr: SummaryTable) -> np.ndarray:
        """Objects of ``R`` per group — the Table 3 statistic."""
        sizes = np.zeros(self.num_groups, dtype=np.int64)
        for group_index, members in enumerate(self.groups):
            sizes[group_index] = sum(tr.get(pid).count for pid in members)
        return sizes

    def validate_covers(self, partition_ids: list[int]) -> None:
        """Check that exactly the given partitions are grouped."""
        grouped = set(self.partition_to_group)
        expected = {int(p) for p in partition_ids}
        if grouped != expected:
            raise ValueError(
                f"grouping covers {len(grouped)} partitions, expected {len(expected)}"
            )


class GroupingStrategy(ABC):
    """Splits the non-empty R-partitions into ``N`` reducer groups."""

    #: identifier used in experiment reports ("geometric" / "greedy")
    name: str = "abstract"

    @abstractmethod
    def group(
        self,
        tr: SummaryTable,
        ts: SummaryTable,
        pivot_dist_matrix: np.ndarray,
        lb_matrix: np.ndarray,
        num_groups: int,
    ) -> GroupAssignment:
        """Produce the assignment.

        Parameters
        ----------
        tr, ts:
            Merged summary tables of ``R`` and ``S``.
        pivot_dist_matrix:
            ``|p_i, p_j|`` for all pivot pairs.
        lb_matrix:
            ``LB(P_j^S, P_i^R)`` from Algorithm 2, indexed ``[j, i]`` — used
            by the greedy strategy's replication cost model.
        num_groups:
            ``N``, the number of reducers.
        """

    @staticmethod
    def _check(tr: SummaryTable, num_groups: int) -> list[int]:
        if num_groups < 1:
            raise ValueError("num_groups must be >= 1")
        partition_ids = tr.partition_ids()
        if not partition_ids:
            raise ValueError("cannot group an empty dataset R")
        return partition_ids
