"""repro — reproduction of "Efficient Processing of k Nearest Neighbor Joins
using MapReduce" (Lu, Shen, Chen, Ooi; PVLDB 5(10), 2012).

Public API tour
---------------

Datasets and metric space::

    from repro import Dataset, get_metric
    from repro.datasets import generate_forest, generate_osm, expand_dataset

Running a join (PGBJ is the paper's algorithm)::

    from repro import PgbjConfig, run_join
    outcome = run_join("pgbj", r, s, PgbjConfig(k=10, num_reducers=9, num_pivots=64))
    outcome.result.neighbors_of(r_id)   # -> (ids, dists)
    outcome.selectivity()               # Equation 13
    outcome.shuffle_bytes()             # shuffling cost
    outcome.simulated_seconds(Cluster(num_nodes=36))

Every algorithm is registered as a declarative plan builder:
:func:`run_join` resolves the name, builds its
:class:`~repro.mapreduce.plan.JobGraph` and executes the stages (independent
ones concurrently) on one runtime; ``available_joins()`` lists the registry.
Baselines: :class:`HBRJ` (R-tree block join), :class:`PBJ` (pruning without
grouping), :class:`BroadcastJoin` (naive).  All are exact and agree with the
brute-force join; the historical classes remain as shims over ``run_join``.
"""

from .core import (
    Dataset,
    KnnJoinResult,
    Metric,
    PartitionAssignment,
    SummaryTable,
    VoronoiPartitioner,
    brute_force_knn_join,
    get_metric,
)
from .joins import (
    HBRJ,
    PBJ,
    PGBJ,
    BlockJoinConfig,
    BroadcastJoin,
    DistributedRangeSelection,
    IJoinBlock,
    JoinConfig,
    JoinOutcome,
    PgbjConfig,
    StageStats,
    TopKClosestPairs,
    ZOrderConfig,
    ZOrderKnnJoin,
    available_joins,
    get_join,
    make_algorithm,
    run_join,
)
from .mapreduce import Cluster, JobGraph, LocalRuntime, MapReduceJob, PlanCache

__version__ = "1.0.0"

__all__ = [
    "Dataset",
    "Metric",
    "get_metric",
    "VoronoiPartitioner",
    "PartitionAssignment",
    "SummaryTable",
    "KnnJoinResult",
    "brute_force_knn_join",
    "JoinConfig",
    "PgbjConfig",
    "BlockJoinConfig",
    "JoinOutcome",
    "PGBJ",
    "PBJ",
    "HBRJ",
    "BroadcastJoin",
    "IJoinBlock",
    "ZOrderKnnJoin",
    "ZOrderConfig",
    "TopKClosestPairs",
    "DistributedRangeSelection",
    "StageStats",
    "make_algorithm",
    "run_join",
    "get_join",
    "available_joins",
    "Cluster",
    "LocalRuntime",
    "MapReduceJob",
    "JobGraph",
    "PlanCache",
    "__version__",
]
