"""Unit tests for geometric and greedy grouping (Algorithm 4, Section 5.2)."""

import numpy as np
import pytest

from repro.core import Dataset, VoronoiPartitioner, get_metric
from repro.core.bounds import compute_lb_matrix, compute_thetas
from repro.core.summary import build_partial_summary
from repro.grouping import (
    GeometricGrouping,
    GreedyGrouping,
    GroupAssignment,
    get_grouping_strategy,
)


def grouped_world(seed=0, num_objects=400, num_pivots=24, k=3):
    rng = np.random.default_rng(seed)
    data = Dataset(rng.random((num_objects, 3)))
    metric = get_metric("l2")
    pivots = data.points[rng.choice(num_objects, num_pivots, replace=False)]
    partitioner = VoronoiPartitioner(pivots, metric)
    assignment = partitioner.assign(data)
    tr = build_partial_summary(assignment.partition_ids, assignment.pivot_distances, 0)
    ts = build_partial_summary(assignment.partition_ids, assignment.pivot_distances, k)
    pdm = partitioner.pivot_distance_matrix()
    thetas = compute_thetas(tr, ts, pdm, k)
    lb = compute_lb_matrix(tr, pdm, thetas)
    return tr, ts, pdm, lb


class TestGroupAssignment:
    def test_reverse_map(self):
        assignment = GroupAssignment.from_groups([[1, 3], [2]])
        assert assignment.group_of(3) == 0
        assert assignment.group_of(2) == 1
        assert assignment.num_groups == 2

    def test_rejects_overlap(self):
        with pytest.raises(ValueError, match="two groups"):
            GroupAssignment.from_groups([[1], [1]])

    def test_validate_covers(self):
        assignment = GroupAssignment.from_groups([[1], [2]])
        assignment.validate_covers([1, 2])
        with pytest.raises(ValueError):
            assignment.validate_covers([1, 2, 3])


@pytest.mark.parametrize("strategy_name", ["geometric", "greedy"])
class TestBothStrategies:
    def test_partition_of_r_into_disjoint_groups(self, strategy_name):
        tr, ts, pdm, lb = grouped_world()
        strategy = get_grouping_strategy(strategy_name)
        assignment = strategy.group(tr, ts, pdm, lb, num_groups=5)
        assert assignment.num_groups == 5
        grouped = sorted(pid for group in assignment.groups for pid in group)
        assert grouped == tr.partition_ids()

    def test_every_group_non_empty(self, strategy_name):
        tr, ts, pdm, lb = grouped_world()
        assignment = get_grouping_strategy(strategy_name).group(tr, ts, pdm, lb, 5)
        assert all(group for group in assignment.groups)

    def test_single_group(self, strategy_name):
        tr, ts, pdm, lb = grouped_world()
        assignment = get_grouping_strategy(strategy_name).group(tr, ts, pdm, lb, 1)
        assert assignment.num_groups == 1
        assert sorted(assignment.groups[0]) == tr.partition_ids()

    def test_more_groups_than_partitions(self, strategy_name):
        tr, ts, pdm, lb = grouped_world(num_pivots=4)
        assignment = get_grouping_strategy(strategy_name).group(tr, ts, pdm, lb, 10)
        non_empty = [g for g in assignment.groups if g]
        assert len(non_empty) == len(tr.partition_ids())
        assert all(len(g) == 1 for g in non_empty)

    def test_deterministic(self, strategy_name):
        tr, ts, pdm, lb = grouped_world(seed=9)
        a = get_grouping_strategy(strategy_name).group(tr, ts, pdm, lb, 6)
        b = get_grouping_strategy(strategy_name).group(tr, ts, pdm, lb, 6)
        assert a.groups == b.groups


class TestGeometricBalancing:
    def test_group_sizes_nearly_equal(self):
        """Table 3's shape: geometric grouping balances object counts."""
        tr, ts, pdm, lb = grouped_world(num_objects=1000, num_pivots=40)
        assignment = GeometricGrouping().group(tr, ts, pdm, lb, 8)
        sizes = assignment.group_sizes(tr)
        assert sizes.std() / sizes.mean() < 0.35

    def test_seeds_are_far_apart(self):
        tr, ts, pdm, lb = grouped_world(num_objects=600, num_pivots=30)
        assignment = GeometricGrouping().group(tr, ts, pdm, lb, 4)
        seeds = [group[0] for group in assignment.groups]
        for i in range(len(seeds)):
            for j in range(i + 1, len(seeds)):
                assert pdm[seeds[i], seeds[j]] > 0


class TestGreedyReplication:
    def test_greedy_replicates_no_more_than_geometric(self):
        """Figure 7(b)'s shape: greedy grouping trims estimated replication."""
        from repro.core.bounds import group_lb_matrix
        from repro.grouping.cost_model import approx_replication

        tr, ts, pdm, lb = grouped_world(num_objects=1200, num_pivots=48, seed=11)
        reps = {}
        for strategy in (GeometricGrouping(), GreedyGrouping()):
            assignment = strategy.group(tr, ts, pdm, lb, 6)
            lbg = group_lb_matrix(lb, assignment.groups)
            reps[strategy.name] = approx_replication(lbg, ts)
        assert reps["greedy"] <= reps["geometric"] * 1.05

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown grouping"):
            get_grouping_strategy("spectral")
