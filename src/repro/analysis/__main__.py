"""``python -m repro.analysis`` — entry point for the repro-lint CLI."""

import sys

from .cli import main

sys.exit(main())
