"""Unit tests for the DFS model."""

import pytest

from repro.mapreduce import DistributedFileSystem


def records(n):
    return [(i, float(i)) for i in range(n)]


class TestPutGet:
    def test_roundtrip(self):
        dfs = DistributedFileSystem(num_nodes=3, chunk_records=4)
        dfs.put("data", records(10))
        assert dfs.read("data") == records(10)

    def test_chunking(self):
        dfs = DistributedFileSystem(num_nodes=3, chunk_records=4)
        file = dfs.put("data", records(10))
        assert [len(c) for c in file.chunks] == [4, 4, 2]
        assert file.record_count() == 10

    def test_round_robin_placement(self):
        dfs = DistributedFileSystem(num_nodes=3, chunk_records=2)
        file = dfs.put("data", records(8))
        assert file.chunk_nodes == [0, 1, 2, 0]

    def test_overwrite(self):
        dfs = DistributedFileSystem(num_nodes=2)
        dfs.put("data", records(5))
        dfs.put("data", records(2))
        assert len(dfs.read("data")) == 2

    def test_empty_file(self):
        dfs = DistributedFileSystem(num_nodes=2, chunk_records=4)
        dfs.put("empty", [])
        assert dfs.read("empty") == []

    def test_exists_delete(self):
        dfs = DistributedFileSystem(num_nodes=2)
        dfs.put("data", records(1))
        assert dfs.exists("data")
        dfs.delete("data")
        assert not dfs.exists("data")
        dfs.delete("data")  # idempotent

    def test_missing_read_raises(self):
        with pytest.raises(KeyError):
            DistributedFileSystem(num_nodes=1).read("nope")


class TestSplits:
    def test_one_split_per_chunk_with_locality(self):
        dfs = DistributedFileSystem(num_nodes=2, chunk_records=3)
        dfs.put("data", records(7))
        splits = dfs.splits("data")
        assert len(splits) == 3
        assert [s.location for s in splits] == [0, 1, 0]
        assert sum(len(s) for s in splits) == 7


class TestBytes:
    def test_replication_multiplies_bytes(self):
        single = DistributedFileSystem(num_nodes=3, replication=1)
        triple = DistributedFileSystem(num_nodes=3, replication=3)
        single.put("data", records(10))
        triple.put("data", records(10))
        assert triple.file_bytes("data") == 3 * single.file_bytes("data")

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            DistributedFileSystem(num_nodes=0)
        with pytest.raises(ValueError):
            DistributedFileSystem(num_nodes=2, chunk_records=0)
        with pytest.raises(ValueError):
            DistributedFileSystem(num_nodes=2, replication=3)


class TestIncrementalRecordCount:
    def test_count_maintained_on_write(self):
        dfs = DistributedFileSystem(num_nodes=2, chunk_records=4)
        file = dfs.put("data", records(11))
        assert file.chunk_record_counts == [4, 4, 3]
        assert file.record_count() == 11

    def test_count_never_rescans_chunks(self):
        # record_count is consulted repeatedly during split planning; replace
        # the chunk lists with tripwires to prove no rescan happens
        class Untouchable(list):
            def __iter__(self):
                raise AssertionError("record_count rescanned a chunk")

        dfs = DistributedFileSystem(num_nodes=2, chunk_records=4)
        file = dfs.put("data", records(10))
        file.chunks = [Untouchable(chunk) for chunk in file.chunks]
        for _ in range(3):
            assert file.record_count() == 10

    def test_hand_built_file_falls_back_to_scan(self):
        from repro.mapreduce import DfsFile

        file = DfsFile(name="manual", chunks=[records(3), records(2)])
        assert file.record_count() == 5

    def test_block_weighted_counts(self):
        import numpy as np

        from repro.mapreduce import ObjectRecord, RecordBlock

        block = RecordBlock.from_records(
            [
                ObjectRecord(dataset="R", object_id=i, point=np.zeros(2))
                for i in range(5)
            ]
        )
        dfs = DistributedFileSystem(num_nodes=2, chunk_records=3)
        file = dfs.put("blocks", [(0, block)])
        assert file.record_count() == 5
        assert file.chunk_record_counts == [3, 2]  # sliced at the boundary


class TestSegmentBackedChunks:
    def make_dfs(self, tmp_path, chunk_records=4):
        return DistributedFileSystem(
            num_nodes=3,
            chunk_records=chunk_records,
            segment_backed=True,
            segment_dir=str(tmp_path),
        )

    def test_roundtrip_and_layout_match_in_ram_mode(self, tmp_path):
        plain = DistributedFileSystem(num_nodes=3, chunk_records=4)
        plain_file = plain.put("data", records(10))
        with self.make_dfs(tmp_path) as dfs:
            file = dfs.put("data", records(10))
            assert dfs.read("data") == plain.read("data")
            assert file.chunk_nodes == plain_file.chunk_nodes
            assert file.chunk_record_counts == plain_file.chunk_record_counts
            assert file.total_bytes == plain_file.total_bytes
            assert file.record_count() == 10

    def test_chunks_live_on_disk_not_in_ram(self, tmp_path):
        from repro.mapreduce import SegmentChunk

        with self.make_dfs(tmp_path) as dfs:
            file = dfs.put("data", records(10))
            assert all(isinstance(chunk, SegmentChunk) for chunk in file.chunks)
            segment_files = list(tmp_path.rglob("*.seg"))
            assert len(segment_files) == len(file.chunks)

    def test_splits_are_lazy_with_cached_weights(self, tmp_path):
        from repro.mapreduce import SegmentChunk

        with self.make_dfs(tmp_path) as dfs:
            dfs.put("data", records(10))
            splits = dfs.splits("data")
            assert all(isinstance(s.records, SegmentChunk) for s in splits)
            assert [s.logical_records for s in splits] == [4, 4, 2]
            # iterating a split decodes the chunk — twice works (no cache)
            assert list(splits[0].records) == records(10)[:4]
            assert list(splits[0].records) == records(10)[:4]

    def test_record_blocks_roundtrip(self, tmp_path):
        import numpy as np

        from repro.mapreduce import ObjectRecord, RecordBlock

        block = RecordBlock.from_records(
            [
                ObjectRecord(dataset="S", object_id=i, point=np.full(2, float(i)))
                for i in range(6)
            ]
        )
        with self.make_dfs(tmp_path) as dfs:
            dfs.put("blocks", [(7, block)])
            ((key1, part1), (key2, part2)) = dfs.read("blocks")
            assert key1 == 7 and key2 == 7
            assert isinstance(part1, RecordBlock)
            assert np.array_equal(
                np.concatenate([part1.object_ids, part2.object_ids]),
                block.object_ids,
            )

    def test_delete_and_overwrite_free_segment_files(self, tmp_path):
        with self.make_dfs(tmp_path) as dfs:
            dfs.put("data", records(10))
            first = list(tmp_path.rglob("*.seg"))
            dfs.put("data", records(4))  # overwrite: old files freed
            second = list(tmp_path.rglob("*.seg"))
            assert first and second and set(first).isdisjoint(second)
            dfs.delete("data")
            assert not list(tmp_path.rglob("*.seg"))

    def test_close_removes_directory(self, tmp_path):
        dfs = self.make_dfs(tmp_path)
        dfs.put("data", records(10))
        assert list(tmp_path.rglob("*.seg"))
        dfs.close()
        assert not any(tmp_path.iterdir())
        dfs.close()  # idempotent

    def test_empty_file(self, tmp_path):
        with self.make_dfs(tmp_path) as dfs:
            dfs.put("empty", [])
            assert dfs.read("empty") == []
            assert dfs.splits("empty")[0].logical_records == 0
