"""Unit tests for the exact kNN primitives and the k-best list."""

import numpy as np
import pytest

from repro.core import get_metric
from repro.core.knn import (
    KBestList,
    ReferenceKBestList,
    brute_force_knn_join,
    knn_of_point,
    select_k_smallest,
)


class TestKBestList:
    def test_keeps_k_smallest(self):
        kbest = KBestList(3)
        kbest.update(np.array([5.0, 1.0, 3.0, 2.0]), np.array([50, 10, 30, 20]))
        ids, dists = kbest.as_arrays()
        assert dists.tolist() == [1.0, 2.0, 3.0]
        assert ids.tolist() == [10, 20, 30]

    def test_incremental_updates_match_batch(self):
        rng = np.random.default_rng(0)
        dists = rng.random(50)
        ids = np.arange(50)
        batch = KBestList(7)
        batch.update(dists, ids)
        incremental = KBestList(7)
        for start in range(0, 50, 9):
            incremental.update(dists[start : start + 9], ids[start : start + 9])
        assert np.array_equal(batch.as_arrays()[0], incremental.as_arrays()[0])

    def test_theta_inf_until_full(self):
        kbest = KBestList(3)
        kbest.update(np.array([1.0]), np.array([1]))
        assert kbest.theta == np.inf
        assert not kbest.is_full()
        kbest.update(np.array([2.0, 3.0]), np.array([2, 3]))
        assert kbest.theta == 3.0
        assert kbest.is_full()

    def test_tie_break_by_id(self):
        kbest = KBestList(2)
        kbest.update(np.array([1.0, 1.0, 1.0]), np.array([30, 10, 20]))
        ids, _ = kbest.as_arrays()
        assert ids.tolist() == [10, 20]

    def test_empty_update_is_noop(self):
        kbest = KBestList(2)
        kbest.update(np.empty(0), np.empty(0, dtype=int))
        assert kbest.as_arrays()[0].size == 0

    def test_misaligned_update_rejected(self):
        with pytest.raises(ValueError):
            KBestList(2).update(np.array([1.0]), np.array([1, 2]))

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            KBestList(0)


def assert_same_state(fast: KBestList, oracle: ReferenceKBestList):
    assert np.array_equal(fast.dists, oracle.dists)
    assert np.array_equal(fast.ids, oracle.ids)
    assert fast.theta == oracle.theta
    assert fast.is_full() == oracle.is_full()


class TestKBestAgainstReference:
    """Property tests: argpartition selection == concatenate+full-lexsort.

    The adversarial axes the issue names: duplicate distances, duplicate
    ids, k > n, and incremental batch feeding — plus random fuzz over all
    of them combined.
    """

    def feed_both(self, k, batches):
        fast, oracle = KBestList(k), ReferenceKBestList(k)
        for dists, ids in batches:
            fast.update(np.asarray(dists, dtype=np.float64), np.asarray(ids))
            oracle.update(np.asarray(dists, dtype=np.float64), np.asarray(ids))
            assert_same_state(fast, oracle)
        return fast, oracle

    def test_duplicate_distances_at_the_cut(self):
        # five candidates share the k-th distance; ids decide who survives
        self.feed_both(
            3, [([1.0, 2.0, 2.0, 2.0, 2.0, 2.0], [50, 40, 10, 30, 20, 5])]
        )

    def test_all_identical_distances(self):
        self.feed_both(4, [(np.zeros(12), np.arange(12)[::-1])])

    def test_duplicate_ids_across_batches(self):
        # the same id offered twice with different distances (merge jobs
        # dedup upstream, but selection must still be deterministic)
        self.feed_both(2, [([0.5, 0.9], [7, 8]), ([0.4, 0.6], [7, 9])])

    def test_k_larger_than_candidate_count(self):
        fast, oracle = self.feed_both(10, [([3.0, 1.0], [2, 1]), ([2.0], [3])])
        assert not fast.is_full()
        assert fast.theta == np.inf

    def test_incremental_batches_match_one_shot(self):
        rng = np.random.default_rng(5)
        dists = np.round(rng.random(200), 2)  # coarse grid => many ties
        ids = rng.permutation(200)
        fast, _ = self.feed_both(
            7, [(dists[i : i + 13], ids[i : i + 13]) for i in range(0, 200, 13)]
        )
        one_shot = ReferenceKBestList(7)
        one_shot.update(dists, ids)
        assert_same_state(fast, one_shot)

    @pytest.mark.parametrize("seed", range(20))
    def test_fuzz_adversarial_batches(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, 12))
        batches = []
        for _ in range(int(rng.integers(1, 8))):
            n = int(rng.integers(0, 30))
            # quantized distances + small id pool: dense tie collisions
            dists = rng.integers(0, 5, size=n) / 4.0
            ids = rng.integers(0, 40, size=n)
            batches.append((dists, ids))
        self.feed_both(k, batches)

    def test_select_k_smallest_equals_lexsort_prefix(self):
        rng = np.random.default_rng(9)
        dists = rng.integers(0, 6, size=300) / 5.0
        ids = rng.integers(0, 100, size=300)
        for k in (1, 5, 299, 300, 500):
            expected = np.lexsort((ids, dists))[:k]
            assert np.array_equal(select_k_smallest(dists, ids, k), expected)


class TestKnnOfPoint:
    def test_finds_nearest(self):
        metric = get_metric("l2")
        points = np.array([[0.0], [1.0], [2.0], [3.0]])
        ids, dists = knn_of_point(metric, np.array([1.4]), points, np.arange(4), 2)
        assert ids.tolist() == [1, 2]
        assert dists[0] == pytest.approx(0.4)

    def test_k_larger_than_data(self):
        metric = get_metric("l2")
        points = np.array([[0.0], [1.0]])
        ids, dists = knn_of_point(metric, np.array([0.0]), points, np.arange(2), 5)
        assert ids.size == 2


class TestBruteForceJoin:
    def test_self_join_excludes_nothing(self):
        """Self-join: each object's 1-NN is itself at distance 0."""
        metric = get_metric("l2")
        points = np.random.default_rng(0).random((20, 2))
        ids = np.arange(20)
        result = brute_force_knn_join(metric, points, ids, points, ids, 1)
        for object_id in ids:
            neighbor_ids, dists = result[object_id]
            assert neighbor_ids[0] == object_id
            assert dists[0] == 0.0

    def test_cardinality(self):
        metric = get_metric("l2")
        rng = np.random.default_rng(1)
        r, s = rng.random((15, 3)), rng.random((25, 3))
        result = brute_force_knn_join(metric, r, np.arange(15), s, np.arange(25), 4)
        assert len(result) == 15
        assert all(ids.size == 4 for ids, _ in result.values())

    def test_counts_all_pairs(self):
        metric = get_metric("l2")
        rng = np.random.default_rng(2)
        r, s = rng.random((10, 2)), rng.random((12, 2))
        brute_force_knn_join(metric, r, np.arange(10), s, np.arange(12), 3)
        assert metric.pairs_computed == 120
