"""Plan-time cost model: calibrated primitive rates and stage estimates.

The adaptive-execution layer (``repro.joins.autotune``) prices candidate
plans *before* running them.  This module holds the generic machinery:

* :class:`CalibratedRates` — seconds-per-unit for the three primitives every
  stage estimate decomposes into (a counted distance pair, a byte through
  the shuffle/segment path, a record through the Python runtime).  Rates
  come from :func:`calibrate`, a sub-second on-box microbench whose result
  is cached to disk (JSON) so repeated CLI/bench invocations on one machine
  pay it once; :data:`DEFAULT_RATES` is the deterministic fallback used when
  calibration is disabled (tests, ``--explain`` without ``--calibrate``).
* :class:`StageCostEstimate` — one stage's predicted volumes, mirroring the
  measured :class:`~repro.mapreduce.runtime.JobStats` fields
  (``shuffle_records``/``shuffle_bytes``/``merge passes``) so predictions
  and measurements line up column-for-column.  ``work_seconds`` is the
  total-work estimate — a pure, monotonically non-decreasing function of
  every volume input, which the monotonicity tests rely on —
  while ``wall_seconds`` additionally folds in per-reducer load shares from
  the sampled histogram, so skew shows up as a longer critical path even
  when total work is unchanged.
* :class:`PlanCostEstimate` — the per-stage estimates of one join plan, in
  stage order (the same shape a :class:`~repro.mapreduce.plan.PlanRun`
  reports measurements in), plus the ``explain()`` rendering behind the
  CLI's ``--explain``.

Nothing here inspects datasets or join internals: callers supply volumes.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "CalibratedRates",
    "DEFAULT_RATES",
    "calibrate",
    "default_calibration_path",
    "StageCostEstimate",
    "PlanCostEstimate",
]

#: bump when the microbench or the rate fields change — stale caches reload
_CALIBRATION_VERSION = 1


@dataclass(frozen=True)
class CalibratedRates:
    """Seconds per unit of each costed primitive.

    ``calibrated`` distinguishes measured rates from the built-in defaults;
    estimates scale linearly in the rates, so *relative* plan comparisons
    (the auto-tuner's argmin) are stable under either.
    """

    seconds_per_pair: float
    seconds_per_shuffle_byte: float
    seconds_per_record: float
    calibrated: bool = False

    def as_dict(self) -> dict:
        return asdict(self)


#: conservative interpreted-python rates; deterministic, never measured
DEFAULT_RATES = CalibratedRates(
    seconds_per_pair=2.0e-8,
    seconds_per_shuffle_byte=1.5e-9,
    seconds_per_record=2.0e-6,
    calibrated=False,
)


def default_calibration_path() -> Path:
    """Where :func:`calibrate` caches rates when no path is given.

    ``REPRO_COST_CACHE`` overrides; otherwise a per-user file under the
    system temp dir (the same policy the spill machinery uses for scratch).
    """
    override = os.environ.get("REPRO_COST_CACHE")
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-cost-calibration.json"


def _best_of(repeats: int, fn) -> float:
    """Smallest wall time of ``repeats`` runs — robust to scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_rates() -> CalibratedRates:
    """The microbench proper: three ~millisecond primitives, best-of-3."""
    rng = np.random.default_rng(0)

    # distance pairs: one vectorised 512x512 L2 block, like the kernels
    a = rng.standard_normal((512, 8))
    b = rng.standard_normal((512, 8))

    def pairs() -> None:
        np.sqrt(((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=-1))

    pair_s = _best_of(3, pairs) / (512 * 512)

    # shuffle bytes: pickle + crc32, the segment wire path's two byte passes
    payload = rng.standard_normal(32_768)  # 256 KiB of float64

    def shuffle() -> None:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        zlib.crc32(blob)

    approx_bytes = payload.nbytes
    byte_s = _best_of(3, shuffle) / approx_bytes

    # records: sort + group 50k keyed tuples, the reduce-input path in small
    keyed = [((i * 2654435761) % 977, i) for i in range(50_000)]

    def records() -> None:
        grouped: dict[int, list[int]] = {}
        for key, seq in sorted(keyed):
            grouped.setdefault(key, []).append(seq)

    record_s = _best_of(3, records) / len(keyed)

    return CalibratedRates(
        seconds_per_pair=max(pair_s, 1e-12),
        seconds_per_shuffle_byte=max(byte_s, 1e-13),
        seconds_per_record=max(record_s, 1e-10),
        calibrated=True,
    )


#: process-local memo: path -> rates (avoids re-reading the JSON per call)
_MEMO: dict[str, CalibratedRates] = {}


def calibrate(cache_path: str | os.PathLike | None = None, force: bool = False) -> CalibratedRates:
    """Measured per-primitive rates, cached to ``cache_path`` (JSON).

    The cache survives across processes — the whole point: benches and CLI
    runs on one box share a single sub-second calibration.  A missing,
    stale-versioned or corrupt cache file triggers re-measurement; failures
    to *write* the cache are ignored (read-only temp dirs degrade to
    per-process calibration, never to an error).
    """
    path = Path(cache_path) if cache_path is not None else default_calibration_path()
    memo_key = str(path)
    if not force:
        cached = _MEMO.get(memo_key)
        if cached is not None:
            return cached
        try:
            payload = json.loads(path.read_text())
            if payload.get("version") == _CALIBRATION_VERSION:
                rates = CalibratedRates(
                    seconds_per_pair=float(payload["seconds_per_pair"]),
                    seconds_per_shuffle_byte=float(payload["seconds_per_shuffle_byte"]),
                    seconds_per_record=float(payload["seconds_per_record"]),
                    calibrated=True,
                )
                _MEMO[memo_key] = rates
                return rates
        except (OSError, ValueError, KeyError, TypeError):
            pass  # fall through to measurement
    rates = _measure_rates()
    _MEMO[memo_key] = rates
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps({"version": _CALIBRATION_VERSION, **rates.as_dict()})
        )
        os.replace(tmp, path)
    except OSError:
        pass
    return rates


@dataclass(frozen=True)
class StageCostEstimate:
    """Predicted volumes for one MapReduce stage of a plan.

    ``reducer_loads`` carries the sampled per-reducer work shares (any
    non-negative weights; only ratios matter) and feeds the skew-aware wall
    estimate; leave empty when the stage has no meaningful reduce skew
    picture.  ``planned_merge_passes`` mirrors the spill accounting: each
    pass is one extra read+write of the stage's shuffle bytes.
    """

    name: str
    map_records: int = 0
    shuffle_records: int = 0
    shuffle_bytes: int = 0
    distance_pairs: float = 0.0
    planned_merge_passes: int = 0
    reducer_loads: tuple[float, ...] = ()
    fused: bool = False

    def work_seconds(self, rates: CalibratedRates) -> float:
        """Total-work estimate: monotone non-decreasing in every volume."""
        io_bytes = self.shuffle_bytes * (1 + max(0, self.planned_merge_passes))
        return (
            self.distance_pairs * rates.seconds_per_pair
            + io_bytes * rates.seconds_per_shuffle_byte
            + (self.map_records + self.shuffle_records) * rates.seconds_per_record
        )

    def wall_seconds(self, rates: CalibratedRates, workers: int) -> float:
        """Critical-path estimate under ``workers``-way parallelism.

        The heaviest reducer share lower-bounds the stage wall: perfectly
        balanced work divides by ``workers``, skewed work does not.
        """
        work = self.work_seconds(rates)
        if workers <= 1:
            return work
        balanced = work / workers
        if not self.reducer_loads:
            return balanced
        total = sum(self.reducer_loads)
        if total <= 0:
            return balanced
        return max(balanced, work * max(self.reducer_loads) / total)


@dataclass(frozen=True)
class PlanCostEstimate:
    """Per-stage estimates of one join plan, in stage order."""

    algorithm: str
    stages: tuple[StageCostEstimate, ...]
    rates: CalibratedRates = DEFAULT_RATES
    workers: int = 1
    knobs: tuple[tuple[str, object], ...] = ()
    notes: tuple[str, ...] = ()

    def work_seconds(self) -> float:
        """Total predicted work across stages (monotone in every volume)."""
        return sum(stage.work_seconds(self.rates) for stage in self.stages)

    def wall_seconds(self) -> float:
        """Predicted wall time: stages run in sequence on the critical path."""
        return sum(
            stage.wall_seconds(self.rates, self.workers) for stage in self.stages
        )

    def shuffle_bytes(self) -> int:
        return sum(stage.shuffle_bytes for stage in self.stages)

    def explain(self) -> str:
        """Human-readable per-stage breakdown (the CLI's ``--explain``)."""
        header = (
            f"{'stage':<28} {'map recs':>10} {'shuf recs':>10} "
            f"{'shuf bytes':>12} {'pairs':>14} {'passes':>6} {'est s':>9}"
        )
        lines = [
            f"cost estimate: {self.algorithm} "
            f"(workers={self.workers}, "
            f"rates={'calibrated' if self.rates.calibrated else 'default'})",
            header,
            "-" * len(header),
        ]
        for stage in self.stages:
            label = stage.name + (" [fused]" if stage.fused else "")
            lines.append(
                f"{label:<28} {stage.map_records:>10} {stage.shuffle_records:>10} "
                f"{stage.shuffle_bytes:>12} {stage.distance_pairs:>14.0f} "
                f"{stage.planned_merge_passes:>6} "
                f"{stage.wall_seconds(self.rates, self.workers):>9.4f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'total':<28} {'':>10} {'':>10} {self.shuffle_bytes():>12} "
            f"{'':>14} {'':>6} {self.wall_seconds():>9.4f}"
        )
        if self.knobs:
            rendered = ", ".join(f"{name}={value}" for name, value in self.knobs)
            lines.append(f"knobs: {rendered}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
