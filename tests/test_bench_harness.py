"""Unit tests for the bench harness (scaling, workloads, result records)."""

import json

import pytest

from repro.bench.harness import (
    DEFAULTS,
    ExperimentResult,
    _engine_params,
    bench_kernel_provider,
    bench_spill_codec,
    forest_workload,
    osm_workload,
    pivot_sweep,
    run_hbrj,
    run_pgbj,
    scaled,
    scaled_pivots,
)


class TestScaling:
    def test_default_scale_is_identity(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert scaled(100) == 100
        assert scaled_pivots(64) == 64

    def test_scale_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert scaled(100) == 50
        assert scaled_pivots(64) == 32

    def test_minimums_enforced(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.001")
        assert scaled(100) >= 8
        assert scaled_pivots(64) >= 4

    def test_pivot_sweep_tracks_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        assert pivot_sweep() == tuple(
            max(4, int(c * 0.25)) for c in DEFAULTS["pivot_counts"]
        )


class TestWorkloads:
    def test_forest_size_is_base_times_expansion(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
        data = forest_workload()
        assert len(data) == scaled(DEFAULTS["forest_base"]) * DEFAULTS["forest_times"]

    def test_forest_dims_parameter(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
        assert forest_workload(dims=4).dimensions == 4

    def test_osm_has_payloads(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
        assert osm_workload().payload_bytes is not None


class TestRunners:
    def test_overrides_reach_config(self, monkeypatch, small_uniform):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
        outcome = run_pgbj(small_uniform, small_uniform, k=3, num_pivots=6, num_reducers=2)
        assert outcome.k == 3

    def test_hbrj_ignores_pivot_override(self, monkeypatch, small_uniform):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
        outcome = run_hbrj(small_uniform, small_uniform, k=3, num_pivots=999, num_reducers=4)
        assert outcome.algorithm == "hbrj"

    def test_typo_override_rejected(self, small_uniform):
        # a knob NO registered config accepts is a typo, not a cross-
        # algorithm knob to filter — it must fail loudly
        import pytest

        with pytest.raises(TypeError, match="num_reducer"):
            run_pgbj(small_uniform, small_uniform, num_reducer=32)


class TestEnvKnobs:
    def test_kernel_provider_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_PROVIDER", raising=False)
        assert bench_kernel_provider() == "auto"
        monkeypatch.setenv("REPRO_KERNEL_PROVIDER", "numba")
        assert bench_kernel_provider() == "numba"
        monkeypatch.setenv("REPRO_KERNEL_PROVIDER", "cuda")
        with pytest.raises(ValueError, match="REPRO_KERNEL_PROVIDER"):
            bench_kernel_provider()

    def test_spill_codec_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPILL_CODEC", raising=False)
        assert bench_spill_codec() == "none"
        monkeypatch.setenv("REPRO_SPILL_CODEC", "zlib")
        assert bench_spill_codec() == "zlib"
        monkeypatch.setenv("REPRO_SPILL_CODEC", "gzip9")
        with pytest.raises(ValueError, match="REPRO_SPILL_CODEC"):
            bench_spill_codec()

    def test_engine_params_carry_provider_and_codec(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPILL_CODEC", raising=False)
        monkeypatch.setenv("REPRO_KERNEL_PROVIDER", "numpy")
        params = _engine_params()
        assert params["kernel_provider"] == "numpy"
        assert "spill_codec" not in params  # "none" stays implicit
        monkeypatch.setenv("REPRO_SPILL_CODEC", "zlib")
        assert _engine_params()["spill_codec"] == "zlib"


class TestExperimentResult:
    def test_save_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_PROVIDER", raising=False)
        record = ExperimentResult(
            exhibit="demo",
            title="Demo",
            text="table",
            data={"series": [1, 2]},
            params={"objects": 10},
        )
        path = record.save(tmp_path)
        payload = json.loads(path.read_text())
        assert payload["exhibit"] == "demo"
        assert payload["data"]["series"] == [1, 2]
        assert payload["kernel_provider"] == "auto"

    def test_kernel_provider_stamped_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_PROVIDER", "numpy")
        record = ExperimentResult(exhibit="demo", title="t", text="b")
        assert record.kernel_provider == "numpy"

    def test_show_contains_title_and_text(self):
        record = ExperimentResult(exhibit="demo", title="A Title", text="BODY")
        shown = record.show()
        assert "DEMO" in shown
        assert "A Title" in shown
        assert "BODY" in shown
