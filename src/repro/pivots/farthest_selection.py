"""Farthest pivot selection.

Paper Section 4.1: on a sample of ``R``, pick a random first pivot, then
iteratively pick the object that maximizes the *sum* of its distances to the
pivots chosen so far.  The paper's own evaluation (Table 2) shows this
strategy keeps selecting outliers, producing badly skewed partition sizes —
it is implemented to reproduce that negative result.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.distance import Metric

from .base import PivotSelector

__all__ = ["FarthestPivotSelector"]


class FarthestPivotSelector(PivotSelector):
    """Greedy max-sum-of-distances selection over a sample.

    Parameters
    ----------
    sample_size:
        Sample drawn on the master before selection (0 disables sampling).
    """

    name = "farthest"

    def __init__(self, sample_size: int = 10_000) -> None:
        if sample_size < 0:
            raise ValueError("sample_size must be >= 0")
        self.sample_size = sample_size

    def select(
        self,
        dataset: Dataset,
        num_pivots: int,
        metric: Metric,
        rng: np.random.Generator,
    ) -> np.ndarray:
        self._check(dataset, num_pivots)
        sample = dataset
        if self.sample_size and len(dataset) > self.sample_size:
            sample = dataset.sample(max(self.sample_size, num_pivots), rng)
        if num_pivots > len(sample):
            raise ValueError(
                f"sample of {len(sample)} objects too small for {num_pivots} pivots"
            )
        points = sample.points
        chosen = [int(rng.integers(len(sample)))]
        # running sum of distances from every sample object to chosen pivots
        sum_dists = metric.distances(points[chosen[0]], points)
        for _ in range(1, num_pivots):
            masked = sum_dists.copy()
            masked[chosen] = -np.inf  # never re-pick an already-chosen object
            next_row = int(np.argmax(masked))
            chosen.append(next_row)
            sum_dists += metric.distances(points[next_row], points)
        return points[chosen].copy()
