"""Shared join-algorithm interface, configuration and outcome types.

Every algorithm (PGBJ, PBJ, H-BRJ, broadcast) consumes two
:class:`~repro.core.dataset.Dataset` objects and produces a
:class:`JoinOutcome`: the exact join result plus the three measurements the
paper's evaluation reports — running time (via the cluster model),
computation selectivity (Equation 13) and shuffling cost.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import nullcontext
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.dataset import Dataset
from repro.core.distance import Metric, get_metric
from repro.core.result import KnnJoinResult
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.counters import Counters
from repro.mapreduce.engines import DEFAULT_ENGINE, Executor, available_engines
from repro.mapreduce.faults import ChaosPlan
from repro.mapreduce.hdfs import DistributedFileSystem
from repro.mapreduce.plan import PlanCache
from repro.mapreduce.runtime import LocalRuntime
from repro.mapreduce.stats import JobStats

__all__ = [
    "JoinConfig",
    "PgbjConfig",
    "BlockJoinConfig",
    "JoinOutcome",
    "KnnJoinAlgorithm",
    "StageStats",
]

#: counter group/name used by every task that computes object distances
PAIRS_GROUP = "selectivity"
PAIRS_NAME = "distance_pairs"
REPLICA_GROUP = "shuffle"
REPLICA_NAME = "s_replicas"


@dataclass
class JoinConfig:
    """Parameters shared by all join algorithms.

    ``num_reducers`` is ``N`` in the paper — the cluster runs one reduce task
    per node, so this is also the modelled node count of the join job.

    ``engine`` selects the execution backend every MapReduce job of the join
    runs on (``serial``, ``threads``, ``processes``, or the persistent
    ``threads-pooled`` / ``processes-pooled`` variants that keep one warm
    worker pool across every phase, retry round and job of the driver run);
    ``max_workers`` sizes the parallel pools.  All engines produce
    bit-identical results — they differ only in wall-clock.

    ``memory_budget`` switches every MapReduce job of the join to the
    out-of-core ``spill`` shuffle backend: each map task buffers at most that
    many (estimated) bytes of output before writing a sorted segment run to
    disk, and reducers stream a k-way external merge instead of materialized
    groups.  ``spill_dir`` hosts the segment files (default: system temp);
    job-chaining intermediates written to the modelled DFS (via
    :meth:`make_dfs`) spill to the same place.  Results, ``pairs_computed``
    and shuffle records/bytes are bit-identical to the in-memory default —
    only where the data lives changes.

    ``shared_executor`` (optional, not part of the value of the config)
    injects a ready :class:`~repro.mapreduce.engines.Executor` every runtime
    this config makes will reuse — the way a multi-join pipeline keeps one
    persistent pool warm across *driver runs*.  The caller owns its
    lifecycle; drivers close only runtimes whose executor they created.
    Like every injected-resource field it is carried *by reference* through
    :meth:`with_changes` (``dataclasses.replace`` re-passes the same object,
    it never copies it), so a sweep of derived configs shares one pool —
    and must close it exactly once, itself, when the sweep ends.

    ``plan_concurrency`` lets the :class:`~repro.mapreduce.plan.PlanScheduler`
    run independent stages of the join's :class:`~repro.mapreduce.plan.JobGraph`
    concurrently (the default; ``False`` is the ``--no-plan-concurrency``
    escape hatch forcing strict declaration order).  Both settings produce
    bit-identical results, counters and shuffle accounting.

    ``plan_cache`` (optional, injected like ``shared_executor`` and likewise
    carried by reference across :meth:`with_changes`) memoizes content-keyed
    plan stages across runs: a sweep holding one
    :class:`~repro.mapreduce.plan.PlanCache` re-executes only the stages
    whose inputs changed — e.g. one PGBJ partitioning job shared by a whole
    k-sweep.

    ``kernel_provider`` selects the reducer-side kernel implementation
    (:mod:`repro.joins.kernel_providers`): ``numpy`` (the oracle), ``numba``
    (JIT-compiled; transparent numpy fallback when the library is missing)
    or the default ``auto`` (per call by batch shape).  Every provider
    produces bit-identical results, ``pairs_computed`` and shuffle
    accounting — the choice only moves wall-clock.

    ``spill_codec`` compresses spill-segment value payloads on disk
    (``none``/``zlib`` always available, ``lz4``/``zstd`` when installed).
    Any codec other than ``none`` implies the out-of-core shuffle backend.
    Accounted shuffle bytes stay the *uncompressed* sizes, so accounting is
    bit-identical to the in-memory oracle — only the file bytes shrink.

    ``chaos`` (optional, injected by reference like ``shared_executor``)
    hands every runtime this config makes a seeded
    :class:`~repro.mapreduce.faults.ChaosPlan` — the structured fault
    injector behind the ``--chaos-spec``/``--chaos-seed`` CLI flags and the
    ``REPRO_CHAOS`` environment variable.  Results, counters and shuffle
    accounting under chaos are bit-identical to a fault-free run (the
    fault-tolerance contract; CI asserts it across engines).
    ``task_timeout`` sets the runtime's absolute soft deadline in seconds
    before a straggling attempt gets a speculative duplicate, and
    ``checkpoint_dir`` turns on stage-level checkpoint/resume in the plan
    scheduler (killed runs resume from their last finished stage).

    ``auto_tune`` lets the registry pick ``num_pivots``/``num_reducers``/
    engine/kernel-provider for the dataset at hand from the plan-time cost
    model (:mod:`repro.joins.autotune`) before the plan is built.  The tuned
    run is bit-identical to a hand-written config carrying the same chosen
    knobs — tuning moves knobs, never semantics.

    ``stage_fusion`` turns on plan-level map fusion: identity-map stages
    (the candidate-merge jobs) execute *premapped* — the producer's output
    pairs feed the consumer's shuffle directly — and ``chain_splits`` skips
    the modelled-DFS round trip for chained intermediates.  Results,
    counters and shuffle accounting are bit-identical to unfused runs (CI
    asserts it); only wall clock and intermediate I/O move.

    ``plan_cache_dir`` makes plan caching *persistent*: content-keyed stage
    results are serialized in the segment wire format under the directory
    (atomic writes, corruption-safe loads) and reused across processes —
    k-sweeps, bench reruns and service restarts skip the partitioning work.
    An injected ``plan_cache`` takes precedence when both are set.
    """

    k: int = 10
    num_reducers: int = 4
    metric_name: str = "l2"
    seed: int = 7
    split_size: int = 4096
    engine: str = DEFAULT_ENGINE
    max_workers: int | None = None
    memory_budget: int | None = None
    spill_dir: str | None = None
    kernel_provider: str = "auto"
    spill_codec: str = "none"
    plan_concurrency: bool = True
    task_timeout: float | None = None
    checkpoint_dir: str | None = None
    auto_tune: bool = False
    stage_fusion: bool = False
    plan_cache_dir: str | None = None
    chaos: ChaosPlan | None = field(default=None, compare=False, repr=False)
    shared_executor: Executor | None = field(default=None, compare=False, repr=False)
    plan_cache: PlanCache | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.num_reducers < 1:
            raise ValueError("num_reducers must be >= 1")
        if self.split_size < 1:
            raise ValueError("split_size must be >= 1")
        if self.engine not in available_engines():
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"available: {', '.join(available_engines())}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.memory_budget is not None and self.memory_budget < 0:
            raise ValueError("memory_budget must be >= 0 (or None for in-memory)")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be > 0 seconds (or None)")
        from repro.joins.kernel_providers import KERNEL_PROVIDERS

        if self.kernel_provider not in KERNEL_PROVIDERS:
            raise ValueError(
                f"unknown kernel provider {self.kernel_provider!r}; "
                f"available: {', '.join(sorted(KERNEL_PROVIDERS))}"
            )
        from repro.mapreduce.shuffle import SEGMENT_CODECS

        if self.spill_codec not in SEGMENT_CODECS:
            raise ValueError(
                f"unknown spill codec {self.spill_codec!r}; "
                f"available: {', '.join(SEGMENT_CODECS)}"
            )

    @property
    def out_of_core(self) -> bool:
        """Whether the join runs its shuffle (and DFS chunks) on disk."""
        return (
            self.memory_budget is not None
            or self.spill_dir is not None
            or self.spill_codec != "none"
        )

    def with_changes(self, **kwargs) -> "JoinConfig":
        """A copy with some fields replaced (sweep helper).

        Injected resources (``shared_executor``, ``plan_cache``) are carried
        into the copy **by reference** — ``dataclasses.replace`` re-invokes
        the constructor with the same objects, never deep-copying them — so
        every config of a sweep drives the same warm pool and the same stage
        cache.  Ownership does not move either: drivers never close a shared
        executor (only runtimes they built pools for), so a sweep closes its
        pool exactly once, after the last run.
        """
        return replace(self, **kwargs)

    def make_runtime(self, **runtime_kwargs) -> LocalRuntime:
        """Resolve the configured engine into a ready runtime.

        The single seam between join drivers and the execution substrate:
        drivers never construct runtimes inline, so swapping backends is a
        config change, not a code change.  ``runtime_kwargs`` pass through to
        :class:`LocalRuntime` (e.g. ``fault_injector``).  Drivers run the
        returned runtime as a context manager, so executors it constructs
        (including persistent pools) are torn down when the join finishes;
        a ``shared_executor`` is reused as-is and stays open for the caller.
        """
        if self.shared_executor is not None:
            runtime_kwargs.setdefault("executor", self.shared_executor)
        if self.chaos is not None:
            runtime_kwargs.setdefault("fault_injector", self.chaos)
        if self.task_timeout is not None:
            runtime_kwargs.setdefault("task_timeout", self.task_timeout)
        if self.out_of_core:
            runtime_kwargs.setdefault("shuffle", "spill")
            runtime_kwargs.setdefault("memory_budget", self.memory_budget)
            runtime_kwargs.setdefault("spill_dir", self.spill_dir)
            runtime_kwargs.setdefault("spill_codec", self.spill_codec)
        return LocalRuntime(
            engine=self.engine, max_workers=self.max_workers, **runtime_kwargs
        )

    def make_dfs(
        self, num_nodes: int | None = None, chunk_records: int | None = None
    ) -> DistributedFileSystem:
        """A DFS for job-chaining intermediates, matching the shuffle mode.

        In-memory configs get the historical in-RAM chunk store; out-of-core
        configs (``memory_budget``/``spill_dir`` set) get segment-backed
        chunks under the same spill location, so intermediates between
        chained jobs leave RAM together with the shuffle.  Drivers run the
        returned DFS as a context manager so segment files live exactly as
        long as the join.
        """
        return DistributedFileSystem(
            num_nodes=num_nodes if num_nodes is not None else self.num_reducers,
            chunk_records=chunk_records if chunk_records is not None else self.split_size,
            segment_backed=self.out_of_core,
            segment_dir=self.spill_dir,
        )

    def make_chain_dfs(self):
        """Context manager for staging job-chaining intermediates.

        Yields a segment-backed :class:`DistributedFileSystem` for
        out-of-core configs — drivers hand it to
        :func:`~repro.joins.block_framework.chain_splits` so intermediates
        between chained jobs live in segment files — or ``None`` for
        in-memory configs, where intermediates chain in RAM exactly as they
        always have.
        """
        return self.make_dfs() if self.out_of_core else nullcontext()

    def chain_dfs(self):
        """The :meth:`make_chain_dfs` value in plan-resource form.

        Plan builders register the returned object with
        ``graph.resource(...)`` (which ignores ``None``) and hand the same
        object to ``chain_splits``: a segment-backed DFS for out-of-core
        configs, ``None`` — chain in RAM — otherwise.
        """
        return self.make_dfs() if self.out_of_core else None


@dataclass
class PgbjConfig(JoinConfig):
    """PGBJ-specific knobs (paper defaults: 4000 random pivots, geometric).

    ``num_pivots`` scales with data size in the benches; the paper's best
    setting is |P| = 4000 on 5.8M objects (RGE strategy).
    """

    num_pivots: int = 64
    pivot_selection: str = "random"
    grouping: str = "geometric"
    pivot_sample_size: int = 8192
    random_candidate_sets: int = 5
    kmeans_iterations: int = 8
    #: disable individual pruning rules (ablation benches)
    use_hyperplane_pruning: bool = True
    use_ring_pruning: bool = True
    #: skew-aware repartitioning: when one reducer group's share of the
    #: R records exceeds this fraction (e.g. 0.5), its work is split across
    #: extra reduce keys — R rows deterministically by object id, the
    #: admitted S candidates replicated to every sub-key.  Join results and
    #: ``pairs_computed`` are bit-identical (each r still meets exactly the
    #: same candidates); only replication/shuffle grow for the split group.
    #: ``0.0`` disables splitting.
    skew_split_threshold: float = 0.0
    #: upper bound on how many ways one skewed group is split
    skew_split_max_ways: int = 4

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_pivots < 1:
            raise ValueError("num_pivots must be >= 1")
        if not 0.0 <= self.skew_split_threshold <= 1.0:
            raise ValueError("skew_split_threshold must be in [0, 1]")
        if self.skew_split_max_ways < 1:
            raise ValueError("skew_split_max_ways must be >= 1")


@dataclass
class BlockJoinConfig(JoinConfig):
    """Configuration for the block-framework algorithms (H-BRJ, PBJ).

    Both split R and S into ``sqrt(N)`` random subsets and run one reducer
    per block pair; ``rtree_capacity`` only matters for H-BRJ; ``num_pivots``
    and pivot options only for PBJ (which runs the partitioning job first).
    """

    rtree_capacity: int = 32
    num_pivots: int = 64
    pivot_selection: str = "random"
    pivot_sample_size: int = 8192
    random_candidate_sets: int = 5

    @property
    def num_blocks(self) -> int:
        """``sqrt(N)`` subsets per dataset, as in the paper's Section 3."""
        return max(1, int(np.sqrt(self.num_reducers)))


class StageStats(list):
    """Per-job :class:`JobStats` keyed by stable stage name, still a list.

    The plan-built joins attach one entry per executed stage, named after
    the plan stage that ran it (``"pgbj/partition"``, ``"pgbj/join"``, …).
    Positional consumers keep working unchanged — iteration order and
    integer indexing are exactly the submission-order list the drivers have
    always produced — while ``outcome.job_stats["pgbj/partition"]`` (or
    :meth:`named` / :meth:`as_dict`) addresses a stage without counting
    list positions.
    """

    def __init__(self, stats=(), names: tuple[str, ...] | list[str] = ()) -> None:
        super().__init__(stats)
        self.names = tuple(names)
        if self.names and len(self.names) != len(self):
            raise ValueError(
                f"{len(self)} stats entries but {len(self.names)} stage names"
            )

    def named(self, name: str) -> JobStats:
        """The stats of the stage with that name (KeyError if absent)."""
        for stage_name, stats in zip(self.names, self):
            if stage_name == name:
                return stats
        raise KeyError(f"no stage named {name!r}; stages: {list(self.names)}")

    def as_dict(self) -> dict[str, JobStats]:
        """Stage name -> stats, in submission order."""
        return dict(zip(self.names, self))

    def __getitem__(self, key):
        if isinstance(key, str):
            return self.named(key)
        return super().__getitem__(key)


@dataclass
class JoinOutcome:
    """A completed join with the paper's three measurements attached.

    ``job_stats`` lists one :class:`JobStats` per executed MapReduce job in
    submission order; plan-built outcomes use :class:`StageStats`, which
    additionally keys each entry by its stable stage name.
    """

    algorithm: str
    result: KnnJoinResult
    r_size: int
    s_size: int
    k: int
    master_phases: dict[str, float] = field(default_factory=dict)
    job_stats: list[JobStats] = field(default_factory=list)
    job_phase_names: list[str] = field(default_factory=list)
    counters: Counters = field(default_factory=Counters)
    master_distance_pairs: int = 0

    # -- the three headline measurements ----------------------------------------

    @property
    def distance_pairs(self) -> int:
        """All object pairs computed, master preprocessing included."""
        return self.master_distance_pairs + self.counters.value(PAIRS_GROUP, PAIRS_NAME)

    def selectivity(self) -> float:
        """Equation 13: computed pairs over |R| x |S| (pivots included)."""
        return self.distance_pairs / (self.r_size * self.s_size)

    def shuffle_bytes(self) -> int:
        """Total mapper-to-reducer bytes across all jobs."""
        return sum(stats.shuffle_bytes for stats in self.job_stats)

    def shuffle_records(self) -> int:
        """Total shuffled records across all jobs."""
        return sum(stats.shuffle_records for stats in self.job_stats)

    def replication_of_s(self) -> int:
        """How many S-object records entered the shuffle (``RP(S)``)."""
        return self.counters.value(REPLICA_GROUP, REPLICA_NAME)

    # -- out-of-core bookkeeping (zero under the in-memory shuffle) -------------

    def spill_segments(self) -> int:
        """Sorted segment runs written to disk across all jobs."""
        return sum(stats.spill_segments for stats in self.job_stats)

    def spill_bytes(self) -> int:
        """Actual segment-file bytes written across all jobs."""
        return sum(stats.spill_bytes for stats in self.job_stats)

    def merge_passes(self) -> int:
        """K-way external merges the reduce phases performed across all jobs."""
        return sum(stats.merge_passes for stats in self.job_stats)

    # -- robustness bookkeeping (zero on a fault-free run) ----------------------

    def recovered_tasks(self) -> int:
        """Map tasks re-run because a reducer hit a lost/corrupt segment."""
        return sum(stats.recovered_tasks for stats in self.job_stats)

    def speculative_wins(self) -> int:
        """Tasks whose speculative duplicate beat the straggling original."""
        return sum(stats.speculative_wins for stats in self.job_stats)

    def checksum_failures(self) -> int:
        """Segment CRC32 mismatches detected across all jobs."""
        return sum(stats.checksum_failures for stats in self.job_stats)

    def spill_files_deleted(self) -> int:
        """Spill files of failed or superseded attempts removed eagerly."""
        return sum(stats.spill_files_deleted for stats in self.job_stats)

    def avg_replication_of_s(self) -> float:
        """``alpha``: average replicas per S object (paper Figure 7b)."""
        return self.replication_of_s() / self.s_size if self.s_size else 0.0

    def simulated_seconds(self, cluster: Cluster) -> float:
        """Modelled wall-clock: master phases + each job on the cluster."""
        total = sum(self.master_phases.values())
        total += sum(stats.simulated_seconds(cluster) for stats in self.job_stats)
        return total

    def phase_seconds(self, cluster: Cluster) -> dict[str, float]:
        """Per-phase breakdown in Figure 6's vocabulary."""
        phases = dict(self.master_phases)
        for name, stats in zip(self.job_phase_names, self.job_stats):
            phases[name] = phases.get(name, 0.0) + stats.simulated_seconds(cluster)
        return phases


class KnnJoinAlgorithm(ABC):
    """A distributed kNN join algorithm."""

    #: identifier used in reports ("pgbj", "pbj", "hbrj", "broadcast")
    name: str = "abstract"

    def __init__(self, config: JoinConfig) -> None:
        self.config = config

    @abstractmethod
    def run(self, r: Dataset, s: Dataset) -> JoinOutcome:
        """Execute the join of ``r`` against ``s``."""

    def _master_metric(self) -> Metric:
        """Fresh counted metric for master-side (preprocessing) phases."""
        return get_metric(self.config.metric_name)

    @staticmethod
    def _check_inputs(r: Dataset, s: Dataset, k: int) -> None:
        if len(r) == 0 or len(s) == 0:
            raise ValueError("kNN join requires non-empty R and S")
        if r.dimensions != s.dimensions:
            raise ValueError(
                f"dimension mismatch: R has {r.dimensions}, S has {s.dimensions}"
            )
        if k > len(s):
            raise ValueError(
                f"k={k} exceeds |S|={len(s)}; the paper assumes k <= |S| "
                "(otherwise the join degrades to a cross join)"
            )
