"""Geometric grouping (paper Algorithm 4).

Partitions whose pivots are near each other join the same group, so the
group's members share candidate regions of ``S``; partitions of ``S`` far
from the whole group are likely pruned.  The algorithm:

1. seed group 1 with the pivot farthest from all other pivots;
2. seed each further group with the pivot farthest from all seeds so far
   (maximizing inter-group separation);
3. repeatedly give the group with the fewest R objects the unassigned pivot
   closest to its members (load balancing: group sizes end up nearly equal).
"""

from __future__ import annotations

import numpy as np

from repro.core.summary import SummaryTable

from .base import GroupAssignment, GroupingStrategy

__all__ = ["GeometricGrouping"]


class GeometricGrouping(GroupingStrategy):
    """Algorithm 4: farthest-first seeding plus smallest-group-first filling."""

    name = "geometric"

    def group(
        self,
        tr: SummaryTable,
        ts: SummaryTable,
        pivot_dist_matrix: np.ndarray,
        lb_matrix: np.ndarray,
        num_groups: int,
    ) -> GroupAssignment:
        partition_ids = self._check(tr, num_groups)
        if num_groups >= len(partition_ids):
            # at most one partition per group: grouping degenerates
            groups = [[pid] for pid in partition_ids]
            groups += [[] for _ in range(num_groups - len(partition_ids))]
            return GroupAssignment.from_groups(groups)

        pids = np.asarray(partition_ids, dtype=np.int64)
        dists = pivot_dist_matrix[np.ix_(pids, pids)]  # local index space
        counts = np.array([tr.get(int(pid)).count for pid in pids], dtype=np.int64)
        m = len(pids)

        unassigned = np.ones(m, dtype=bool)
        groups_local: list[list[int]] = []
        group_sizes = np.zeros(num_groups, dtype=np.int64)

        # line 1-2: first seed = pivot with maximum total distance to the rest
        first = int(np.argmax(dists.sum(axis=1)))
        groups_local.append([first])
        unassigned[first] = False
        group_sizes[0] = counts[first]
        seed_dist_sum = dists[first].copy()  # sum of distances to chosen seeds

        # lines 3-5: each next seed maximizes distance to all previous seeds
        for g in range(1, num_groups):
            masked = np.where(unassigned, seed_dist_sum, -np.inf)
            seed = int(np.argmax(masked))
            groups_local.append([seed])
            unassigned[seed] = False
            group_sizes[g] = counts[seed]
            seed_dist_sum += dists[seed]

        # per-group running sum of distances from every pivot to group members
        member_dist_sum = np.stack([dists[group[0]] for group in groups_local])

        # lines 6-9: smallest group takes its nearest unassigned pivot
        remaining = int(unassigned.sum())
        for _ in range(remaining):
            g = int(np.argmin(group_sizes))
            masked = np.where(unassigned, member_dist_sum[g], np.inf)
            pick = int(np.argmin(masked))
            groups_local[g].append(pick)
            unassigned[pick] = False
            group_sizes[g] += counts[pick]
            member_dist_sum[g] += dists[pick]

        groups = [[int(pids[local]) for local in group] for group in groups_local]
        assignment = GroupAssignment.from_groups(groups)
        assignment.validate_covers(partition_ids)
        return assignment
