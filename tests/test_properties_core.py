"""Property-based tests (hypothesis) for core invariants.

These encode the paper's theorems as machine-checked properties over random
inputs: metric axioms, partition invariants, bound validity, ring
completeness and scheduler bounds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import Dataset, VoronoiPartitioner, get_metric
from repro.core.bounds import compute_lb_matrix, compute_thetas, lower_bound, upper_bound
from repro.core.geometry import hyperplane_distance, ring_slice
from repro.core.knn import KBestList
from repro.core.summary import build_partial_summary
from repro.mapreduce.cluster import schedule_makespan

finite = st.floats(min_value=-100, max_value=100, allow_nan=False, width=64)


def points_strategy(min_rows=2, max_rows=30, dims=3):
    return arrays(
        np.float64,
        st.tuples(st.integers(min_rows, max_rows), st.just(dims)),
        elements=finite,
    )


@st.composite
def metric_and_points(draw):
    name = draw(st.sampled_from(["l2", "l1", "linf"]))
    points = draw(points_strategy())
    return get_metric(name), points


class TestMetricAxioms:
    @given(metric_and_points())
    @settings(max_examples=60, deadline=None)
    def test_non_negativity_and_symmetry(self, pair):
        metric, points = pair
        a, b = points[0], points[-1]
        d_ab = metric.distance(a, b)
        assert d_ab >= 0
        assert abs(d_ab - metric.distance(b, a)) < 1e-9

    @given(metric_and_points())
    @settings(max_examples=60, deadline=None)
    def test_identity(self, pair):
        metric, points = pair
        assert metric.distance(points[0], points[0]) == 0.0

    @given(metric_and_points())
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, pair):
        metric, points = pair
        if points.shape[0] < 3:
            return
        a, b, c = points[0], points[1], points[2]
        assert metric.distance(a, c) <= (
            metric.distance(a, b) + metric.distance(b, c) + 1e-9
        )


class TestPartitionInvariants:
    @given(points_strategy(min_rows=5, max_rows=40), st.integers(1, 6), st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_cover_and_nearest(self, points, num_pivots, seed):
        rng = np.random.default_rng(seed)
        chosen = rng.choice(points.shape[0], min(num_pivots, points.shape[0]), replace=False)
        pivots = points[chosen]
        metric = get_metric("l2")
        partitioner = VoronoiPartitioner(pivots, metric)
        assignment = partitioner.assign(Dataset(points))
        # every object assigned exactly once
        assert assignment.counts().sum() == points.shape[0]
        # assigned distance equals the true minimum pivot distance
        for row in range(points.shape[0]):
            true_min = np.min(np.linalg.norm(pivots - points[row], axis=1))
            assert abs(assignment.pivot_distances[row] - true_min) < 1e-7


class TestBoundValidity:
    @given(points_strategy(min_rows=8, max_rows=40), st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_theorems_3_and_4_sandwich(self, points, seed):
        """ub >= |r,s| >= lb over random partitioned worlds."""
        rng = np.random.default_rng(seed)
        half = points.shape[0] // 2
        r_points, s_points = points[:half], points[half:]
        if r_points.shape[0] == 0 or s_points.shape[0] == 0:
            return
        num_pivots = min(3, r_points.shape[0])
        pivots = r_points[rng.choice(r_points.shape[0], num_pivots, replace=False)]
        metric = get_metric("l2")
        partitioner = VoronoiPartitioner(pivots, metric)
        ar = partitioner.assign(Dataset(r_points))
        as_ = partitioner.assign(Dataset(s_points, ids=np.arange(1000, 1000 + s_points.shape[0])))
        tr = build_partial_summary(ar.partition_ids, ar.pivot_distances, 0)
        pdm = partitioner.pivot_distance_matrix()
        for r_row in range(min(5, r_points.shape[0])):
            i = ar.partition_ids[r_row]
            u_ri = tr.get(int(i)).upper
            for s_row in range(min(5, s_points.shape[0])):
                j = as_.partition_ids[s_row]
                ds_pj = as_.pivot_distances[s_row]
                true = float(np.linalg.norm(r_points[r_row] - s_points[s_row]))
                assert true <= upper_bound(u_ri, pdm[i, j], ds_pj) + 1e-7
                assert true >= lower_bound(u_ri, pdm[i, j], ds_pj) - 1e-7

    @given(points_strategy(min_rows=10, max_rows=40), st.integers(0, 5), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_shipping_rule_completeness(self, points, seed, k):
        """Corollary 2 never loses a true neighbor (the exactness linchpin)."""
        rng = np.random.default_rng(seed)
        data = Dataset(points)
        if k > points.shape[0]:
            return
        num_pivots = min(4, points.shape[0])
        pivots = points[rng.choice(points.shape[0], num_pivots, replace=False)]
        metric = get_metric("l2")
        partitioner = VoronoiPartitioner(pivots, metric)
        assignment = partitioner.assign(data)
        tr = build_partial_summary(assignment.partition_ids, assignment.pivot_distances, 0)
        ts = build_partial_summary(assignment.partition_ids, assignment.pivot_distances, k)
        pdm = partitioner.pivot_distance_matrix()
        thetas = compute_thetas(tr, ts, pdm, k)
        lb = compute_lb_matrix(tr, pdm, thetas)
        for r_row in range(points.shape[0]):
            i = assignment.partition_ids[r_row]
            dists = np.linalg.norm(points - points[r_row], axis=1)
            for s_row in np.argsort(dists, kind="stable")[:k]:
                j = assignment.partition_ids[s_row]
                assert assignment.pivot_distances[s_row] >= lb[j, i] - 1e-7


class TestRingCompleteness:
    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=50),
        st.floats(0, 100, allow_nan=False),
        st.floats(0, 50, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_slice_superset_of_qualifiers(self, dists, query_dist, theta):
        sorted_dists = np.sort(np.array(dists))
        lo_stat, hi_stat = float(sorted_dists[0]), float(sorted_dists[-1])
        start, stop = ring_slice(sorted_dists, lo_stat, hi_stat, query_dist, theta)
        qualifying = np.abs(sorted_dists - query_dist) <= theta
        inside = np.zeros(len(sorted_dists), dtype=bool)
        inside[start:stop] = True
        assert not np.any(qualifying & ~inside)


class TestHyperplaneSafety:
    @given(points_strategy(min_rows=4, max_rows=30))
    @settings(max_examples=50, deadline=None)
    def test_generic_bound_never_exceeds_true_distance(self, points):
        """GH bound <= |q, o| for q in cell i, o in cell j (both variants)."""
        pi, pj = points[0], points[1]
        d_pi_pj = float(np.linalg.norm(pi - pj))
        for q in points[2 : points.shape[0] // 2 + 2]:
            d_qi, d_qj = np.linalg.norm(q - pi), np.linalg.norm(q - pj)
            if d_qi > d_qj:
                continue  # q must be in cell i
            for o in points[points.shape[0] // 2 :]:
                d_oi, d_oj = np.linalg.norm(o - pi), np.linalg.norm(o - pj)
                if d_oj > d_oi:
                    continue  # o must be in cell j
                true = float(np.linalg.norm(q - o))
                for euclidean in (True, False):
                    bound = hyperplane_distance(float(d_qi), float(d_qj), d_pi_pj, euclidean)
                    assert bound <= true + 1e-7


class TestKBestProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 100, allow_nan=False), st.integers(0, 10_000)),
            min_size=1,
            max_size=60,
            unique_by=lambda t: t[1],
        ),
        st.integers(1, 10),
        st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_chunked_equals_global_sort(self, items, k, chunks):
        dists = np.array([d for d, _ in items])
        ids = np.array([i for _, i in items])
        kbest = KBestList(k)
        for chunk in np.array_split(np.arange(len(items)), chunks):
            kbest.update(dists[chunk], ids[chunk])
        got_ids, got_dists = kbest.as_arrays()
        order = np.lexsort((ids, dists))[:k]
        assert np.array_equal(got_ids, ids[order])
        assert np.allclose(got_dists, dists[order])


class TestSchedulerBounds:
    @given(st.lists(st.floats(0, 10, allow_nan=False), min_size=0, max_size=30), st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_between_critical_path_and_serial(self, durations, slots):
        makespan = schedule_makespan(durations, slots)
        if durations:
            assert makespan >= max(durations) - 1e-9
            assert makespan <= sum(durations) + 1e-9
            # list scheduling is a 2-approximation of optimal
            lower = max(max(durations), sum(durations) / slots)
            assert makespan <= 2 * lower + 1e-9
        else:
            assert makespan == 0.0
