"""Property-based tests for the index substrates (B+-tree, R-tree, iDistance).

Every index must agree exactly with linear-scan semantics over arbitrary
inputs — duplicated keys, clustered points, degenerate dimensions included.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree
from repro.core import get_metric
from repro.core.knn import knn_of_point
from repro.idistance import IDistanceIndex
from repro.rtree import RTree

keys_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=0,
    max_size=120,
)


class TestBTreeProperties:
    @given(keys_strategy, st.integers(3, 16))
    @settings(max_examples=60, deadline=None)
    def test_items_are_sorted_multiset_of_inserts(self, keys, order):
        tree = BPlusTree(order=order)
        for value, key in enumerate(keys):
            tree.insert(key, value)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == sorted(keys)

    @given(keys_strategy, st.integers(3, 16))
    @settings(max_examples=40, deadline=None)
    def test_bulk_load_equals_incremental(self, keys, order):
        incremental = BPlusTree(order=order)
        for value, key in enumerate(keys):
            incremental.insert(key, value)
        bulk = BPlusTree.bulk_load(list(zip(keys, range(len(keys)))), order=order)
        bulk.check_invariants()
        assert [k for k, _ in bulk.items()] == [k for k, _ in incremental.items()]

    @given(
        keys_strategy,
        st.floats(-1e6, 1e6, allow_nan=False),
        st.floats(-1e6, 1e6, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_scan_equals_filter(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = BPlusTree(order=6)
        for value, key in enumerate(keys):
            tree.insert(key, value)
        got = sorted(key for key, _ in tree.range_scan(lo, hi))
        want = sorted(key for key in keys if lo <= key <= hi)
        assert got == want

    @given(keys_strategy, st.floats(-1e6, 1e6, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_scan_outward_orders_by_distance(self, keys, center):
        tree = BPlusTree(order=6)
        for value, key in enumerate(keys):
            tree.insert(key, value)
        deltas = [abs(key - center) for key, _ in tree.scan_outward(center)]
        assert deltas == sorted(deltas)
        assert len(deltas) == len(keys)


def points_and_query(draw, max_points=80, dims_range=(1, 4)):
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(1, max_points))
    dims = draw(st.integers(*dims_range))
    rng = np.random.default_rng(seed)
    # mix of clustered and grid-like (tie-prone) data
    if draw(st.booleans()):
        points = rng.integers(0, 5, size=(n, dims)).astype(float)
    else:
        points = rng.random((n, dims))
    query = rng.random(dims) * 2 - 0.5
    k = draw(st.integers(1, 10))
    return points, query, k, seed


@st.composite
def rtree_world(draw):
    return points_and_query(draw)


class TestRTreeProperties:
    @given(rtree_world())
    @settings(max_examples=50, deadline=None)
    def test_knn_distances_match_brute_force(self, world):
        points, query, k, seed = world
        ids = np.arange(points.shape[0])
        tree = RTree.bulk_load(points, ids, get_metric("l2"), capacity=8)
        tree.check_invariants()
        got_ids, got_dists = tree.knn(query, k)
        want_ids, want_dists = knn_of_point(get_metric("l2"), query, points, ids, k)
        assert np.allclose(got_dists, want_dists)

    @given(rtree_world())
    @settings(max_examples=30, deadline=None)
    def test_insertion_keeps_invariants(self, world):
        points, query, k, seed = world
        tree = RTree(get_metric("l2"), capacity=4)
        for row in range(points.shape[0]):
            tree.insert(points[row], row)
        tree.check_invariants()
        got_ids, got_dists = tree.knn(query, k)
        _, want_dists = knn_of_point(
            get_metric("l2"), query, points, np.arange(points.shape[0]), k
        )
        assert np.allclose(got_dists, want_dists)


@st.composite
def idistance_world(draw):
    points, query, k, seed = points_and_query(draw, max_points=60)
    num_pivots = draw(st.integers(1, min(8, points.shape[0])))
    return points, query, k, num_pivots, seed


class TestIDistanceProperties:
    @given(idistance_world())
    @settings(max_examples=40, deadline=None)
    def test_knn_distances_match_brute_force(self, world):
        points, query, k, num_pivots, seed = world
        rng = np.random.default_rng(seed)
        ids = np.arange(points.shape[0])
        pivots = points[rng.choice(points.shape[0], num_pivots, replace=False)]
        index = IDistanceIndex(points, ids, pivots, get_metric("l2"), order=8)
        got_ids, got_dists = index.knn(query, k)
        _, want_dists = knn_of_point(get_metric("l2"), query, points, ids, k)
        assert np.allclose(got_dists, want_dists)

    @given(idistance_world(), st.floats(0.0, 2.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_range_search_matches_filter(self, world, theta):
        points, query, _, num_pivots, seed = world
        rng = np.random.default_rng(seed)
        ids = np.arange(points.shape[0])
        pivots = points[rng.choice(points.shape[0], num_pivots, replace=False)]
        index = IDistanceIndex(points, ids, pivots, get_metric("l2"), order=8)
        got = index.range_search(query, theta)
        dists = np.linalg.norm(points - query, axis=1)
        want = sorted(int(i) for i in ids[dists <= theta + 1e-12])
        assert got == want
