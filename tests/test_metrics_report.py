"""Unit tests for statistics and report rendering."""

import numpy as np
import pytest

from repro.metrics import Series, format_series, format_table, size_stats


class TestSizeStats:
    def test_values(self):
        stats = size_stats(np.array([1, 2, 3, 4]))
        assert stats.minimum == 1
        assert stats.maximum == 4
        assert stats.average == 2.5
        assert stats.deviation == pytest.approx(np.std([1, 2, 3, 4]))

    def test_as_row(self):
        row = size_stats(np.array([5, 5, 5])).as_row()
        assert row == [5, 5, 5.0, 0.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            size_stats(np.array([]))


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(["name", "value"], [["abc", 1], ["d", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # columns align: 'abc' and 'd' start at the same offset
        assert lines[3].index("1") == lines[4].index("2")

    def test_float_formatting(self):
        out = format_table(["x"], [[0.000123456]])
        assert "1.235e-04" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestSeries:
    def test_add_and_render(self):
        a = Series("pgbj")
        b = Series("hbrj")
        for x in range(3):
            a.add(x * 1.0)
            b.add(x * 2.0)
        out = format_series("Fig", "k", [10, 20, 30], [a, b])
        lines = out.splitlines()
        assert lines[0] == "Fig"
        assert "pgbj" in lines[1] and "hbrj" in lines[1]
        assert len(lines) == 6
