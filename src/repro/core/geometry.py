"""Hyperplane and ring pruning rules (paper Theorems 1-2, Corollary 1).

These are the two in-reducer filters used while scanning candidate
S-partitions for one query object (Algorithm 3, lines 19-22):

* **Theorem 1 / Corollary 1** — generalized-hyperplane pruning.  For pivots
  ``p_i`` and ``p_j``, every object of cell ``P_j`` is at least
  ``d(q, HP(p_i, p_j))`` away from a query ``q`` in cell ``P_i``; when that
  distance exceeds the current kNN radius ``theta``, the whole cell is skipped.
* **Theorem 2** — metric ring pruning.  Within a surviving cell only objects
  whose pivot distance lies in the ring
  ``[max(L, |p_j, q| - theta), min(U, |p_j, q| + theta)]`` can be within
  ``theta`` of ``q``; with pivot distances sorted, the ring is a contiguous
  slice found by binary search.

A tiny absolute slack ``PRUNE_EPS`` is applied wherever a floating-point
comparison could otherwise prune an exact boundary case; the rules are
necessary conditions, so slack only weakens pruning, never correctness.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PRUNE_EPS",
    "hyperplane_distance",
    "hyperplane_distances",
    "partition_pruned_by_hyperplane",
    "ring_bounds",
    "ring_slice",
    "ring_slices",
]

#: absolute slack for floating-point-safe pruning comparisons
PRUNE_EPS = 1e-9


def hyperplane_distance(
    dist_q_pi: float, dist_q_pj: float, dist_pi_pj: float, euclidean: bool = True
) -> float:
    """Lower bound on the distance from ``q`` (cell ``P_i``) to cell ``P_j``.

    For Euclidean space this is the exact distance to the generalized
    hyperplane ``HP(p_i, p_j)`` (Theorem 1 / Equation 3), expressed purely in
    already-known distances.  For other metrics Equation 3 does not hold, so
    the metric-space GH bound ``(|q, p_j| - |q, p_i|) / 2`` (Uhlmann's
    generalized-hyperplane pruning, valid by the triangle inequality alone)
    is used instead — looser, but correct.  Positive when ``q`` is on
    ``p_i``'s side.
    """
    if not euclidean:
        return max(0.0, (dist_q_pj - dist_q_pi) / 2.0)
    if dist_pi_pj <= 0.0:
        # coincident pivots: the hyperplane is undefined; nothing can be
        # pruned, report distance 0 (never exceeds any non-negative theta).
        return 0.0
    return (dist_q_pj * dist_q_pj - dist_q_pi * dist_q_pi) / (2.0 * dist_pi_pj)


def hyperplane_distances(
    dist_q_pi: np.ndarray,
    dist_q_pj: np.ndarray,
    dist_pi_pj: float,
    euclidean: bool = True,
) -> np.ndarray:
    """Vectorized :func:`hyperplane_distance` for many queries of one cell.

    ``dist_q_pi``/``dist_q_pj`` are aligned per-query arrays; ``dist_pi_pj``
    is the shared pivot-pair distance.  Elementwise IEEE operations match the
    scalar version exactly, so batched pruning decisions are bit-identical.
    """
    if not euclidean:
        return np.maximum(0.0, (dist_q_pj - dist_q_pi) / 2.0)
    if dist_pi_pj <= 0.0:
        return np.zeros_like(dist_q_pi)
    return (dist_q_pj * dist_q_pj - dist_q_pi * dist_q_pi) / (2.0 * dist_pi_pj)


def partition_pruned_by_hyperplane(
    dist_q_pi: float,
    dist_q_pj: float,
    dist_pi_pj: float,
    theta: float,
    euclidean: bool = True,
) -> bool:
    """Corollary 1: may cell ``P_j`` be skipped entirely for query ``q``?

    True when every object of ``P_j`` is provably farther than ``theta``.
    """
    return (
        hyperplane_distance(dist_q_pi, dist_q_pj, dist_pi_pj, euclidean)
        > theta + PRUNE_EPS
    )


def ring_bounds(
    lower: float, upper: float, dist_q_pj: float, theta: float
) -> tuple[float, float]:
    """Theorem 2 ring ``[lo, hi]`` of admissible pivot distances.

    ``lower``/``upper`` are ``L(P_j)`` / ``U(P_j)`` from the summary table.
    An empty ring (``lo > hi``) means no object of the cell qualifies.
    """
    lo = max(lower, dist_q_pj - theta) - PRUNE_EPS
    hi = min(upper, dist_q_pj + theta) + PRUNE_EPS
    return lo, hi


def ring_slice(
    sorted_pivot_dists: np.ndarray, lower: float, upper: float, dist_q_pj: float, theta: float
) -> tuple[int, int]:
    """Indices ``[start, stop)`` of ring survivors in a sorted distance array.

    ``sorted_pivot_dists`` holds the pivot distances of the cell's objects in
    ascending order; the Theorem 2 ring is then a contiguous slice.
    """
    lo, hi = ring_bounds(lower, upper, dist_q_pj, theta)
    if lo > hi:
        return 0, 0
    start = int(np.searchsorted(sorted_pivot_dists, lo, side="left"))
    stop = int(np.searchsorted(sorted_pivot_dists, hi, side="right"))
    return start, stop


def ring_slices(
    sorted_pivot_dists: np.ndarray,
    lower: float,
    upper: float,
    dist_q_pj: np.ndarray,
    theta: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`ring_slice` for many queries against one cell.

    ``dist_q_pj`` and ``theta`` are aligned per-query arrays; returns
    ``(starts, stops)`` index arrays.  ``theta = +inf`` degenerates to the
    full slice (the ring covers the cell's whole occupied band), matching the
    per-record path's explicit full-scan branch.
    """
    lo = np.maximum(lower, dist_q_pj - theta) - PRUNE_EPS
    hi = np.minimum(upper, dist_q_pj + theta) + PRUNE_EPS
    starts = np.searchsorted(sorted_pivot_dists, lo, side="left")
    stops = np.searchsorted(sorted_pivot_dists, hi, side="right")
    empty = lo > hi
    if empty.any():
        starts[empty] = 0
        stops[empty] = 0
    return starts, stops
