"""Unit tests for the dataflow plan layer (JobGraph / PlanScheduler / PlanCache).

The scheduler's contract: stages execute only after their declared
dependencies, concurrent and sequential scheduling produce bit-identical
results, and content-keyed stages are served verbatim from the cache.  The
hypothesis property drives randomly shaped DAGs with randomized stage
latencies through the concurrent scheduler and asserts dependency order
held on every interleaving.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce import (
    JobGraph,
    LocalRuntime,
    PlanCache,
    PlanError,
    PlanScheduler,
)
from tests.test_engines import job_fingerprint, norm_job, norm_splits


def job_stage(graph, name, deps=(), key=None):
    """A stage running the shared reference job (results are comparable)."""
    return graph.stage(name, lambda ctx: (norm_job(), norm_splits()), deps=deps, key=key)


class TestJobGraph:
    def test_declaration_order_is_topological(self):
        graph = JobGraph("g")
        a = job_stage(graph, "a")
        b = job_stage(graph, "b", deps=(a,))
        assert [s.name for s in graph.stages] == ["a", "b"]
        assert b.deps == (a,)

    def test_unknown_dependency_rejected(self):
        graph = JobGraph("g")
        other = JobGraph("other")
        foreign = job_stage(other, "x")
        with pytest.raises(PlanError, match="not part of graph"):
            job_stage(graph, "a", deps=(foreign,))

    def test_duplicate_stage_name_rejected(self):
        graph = JobGraph("g")
        job_stage(graph, "a")
        with pytest.raises(PlanError, match="already has a stage"):
            job_stage(graph, "a")

    def test_none_resource_ignored(self):
        graph = JobGraph("g")
        assert graph.resource(None) is None
        assert graph.resources == []

    def test_fuse_uniquifies_names_and_keeps_handles(self):
        g1, g2 = JobGraph("one"), JobGraph("two")
        a1 = job_stage(g1, "a")
        a2 = job_stage(g2, "a")
        fused = JobGraph.fuse([g1, g2])
        assert [s.name for s in fused.stages] == ["a", "1:a"]
        with LocalRuntime() as runtime:
            run = PlanScheduler(runtime).execute(fused)
        # original handles resolve to the fused executions
        assert job_fingerprint(run.result_of(a1)) == job_fingerprint(run.result_of(a2))


class TestSchedulerEquivalence:
    def make_graph(self):
        graph = JobGraph("diamond")
        a = job_stage(graph, "a")
        b = job_stage(graph, "b", deps=(a,))
        c = job_stage(graph, "c", deps=(a,))
        d = job_stage(graph, "d", deps=(b, c))
        return graph, (a, b, c, d)

    def test_concurrent_matches_sequential(self):
        graph_seq, stages_seq = self.make_graph()
        with LocalRuntime() as runtime:
            sequential = PlanScheduler(runtime, concurrent=False).execute(graph_seq)
        graph_con, stages_con = self.make_graph()
        with LocalRuntime() as runtime:
            concurrent = PlanScheduler(runtime, concurrent=True).execute(graph_con)
        for seq_stage, con_stage in zip(stages_seq, stages_con):
            assert job_fingerprint(sequential.result_of(seq_stage)) == job_fingerprint(
                concurrent.result_of(con_stage)
            )

    @pytest.mark.parametrize("engine", ("serial", "threads", "processes-pooled"))
    def test_concurrent_spill_jobs_do_not_collide(self, engine):
        """Two same-named jobs running at once must keep separate spill dirs."""
        reference = job_fingerprint(LocalRuntime().run(norm_job(), norm_splits()))
        graph = JobGraph("parallel")
        stages = [job_stage(graph, f"s{i}") for i in range(4)]
        with LocalRuntime(engine=engine, max_workers=2, memory_budget=0) as runtime:
            run = PlanScheduler(runtime, concurrent=True).execute(graph)
        for stage in stages:
            assert job_fingerprint(run.result_of(stage)) == reference

    def test_executions_in_declaration_order(self):
        graph, (a, b, c, d) = self.make_graph()
        with LocalRuntime() as runtime:
            run = PlanScheduler(runtime).execute(graph)
        assert [e.stage.name for e in run.executions] == ["a", "b", "c", "d"]
        # execution timestamps are stamped and respect the dependency order
        for execution in run.executions:
            assert execution.wall_seconds > 0
            for dep in execution.stage.deps:
                assert run.execution_of(dep).finished_s <= execution.started_s

    def test_builder_error_propagates(self):
        graph = JobGraph("boom")

        def explode(ctx):
            raise RuntimeError("builder exploded")

        graph.stage("bad", explode)
        job_stage(graph, "ok")
        with LocalRuntime() as runtime:
            with pytest.raises(RuntimeError, match="builder exploded"):
                PlanScheduler(runtime, concurrent=True).execute(graph)

    def test_undeclared_dependency_read_rejected(self):
        graph = JobGraph("g")
        a = job_stage(graph, "a")

        def sneaky(ctx):
            ctx.result_of(a)  # reads "a" without declaring the edge
            return None

        graph.stage("b", sneaky)  # note: no deps
        with LocalRuntime() as runtime:
            with pytest.raises(PlanError, match="without declaring"):
                PlanScheduler(runtime, concurrent=False).execute(graph)

    def test_master_only_stage_and_phases(self):
        graph = JobGraph("m")

        def master(ctx):
            with ctx.timed("thinking"):
                pass
            ctx.add_phase("extra", 0.25)
            return None

        stage = graph.stage("master", master)
        with LocalRuntime() as runtime:
            run = PlanScheduler(runtime).execute(graph)
        phases = run.phases_of((stage,))
        assert phases["extra"] == 0.25
        assert "thinking" in phases
        assert run.execution_of(stage).result is None
        with pytest.raises(PlanError, match="no job result"):
            run.result_of(stage)


class TestPlanCache:
    def test_keyed_stage_served_verbatim(self):
        cache = PlanCache()
        results = []
        for _ in range(2):
            graph = JobGraph("g")
            stage = job_stage(graph, "a", key=("norms", 1))
            with LocalRuntime() as runtime:
                run = PlanScheduler(runtime, cache=cache).execute(graph)
            results.append(run.result_of(stage))
        assert results[1] is results[0]  # the original object, bit for bit
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_different_keys_do_not_alias(self):
        cache = PlanCache()
        for key in (("a",), ("b",)):
            graph = JobGraph("g")
            job_stage(graph, "a", key=key)
            with LocalRuntime() as runtime:
                PlanScheduler(runtime, cache=cache).execute(graph)
        assert len(cache) == 2
        assert cache.hits == 0

    def test_unkeyed_stage_never_cached(self):
        cache = PlanCache()
        for _ in range(2):
            graph = JobGraph("g")
            job_stage(graph, "a")  # no key
            with LocalRuntime() as runtime:
                run = PlanScheduler(runtime, cache=cache).execute(graph)
            assert run.cached_stage_names() == []
        assert len(cache) == 0

    def test_cached_run_marks_stage(self):
        cache = PlanCache()
        for expected in ([], ["a"]):
            graph = JobGraph("g")
            job_stage(graph, "a", key=("k",))
            job_stage(graph, "b")
            with LocalRuntime() as runtime:
                run = PlanScheduler(runtime, cache=cache).execute(graph)
            assert run.cached_stage_names() == expected

    def test_clear(self):
        cache = PlanCache()
        graph = JobGraph("g")
        job_stage(graph, "a", key=("k",))
        with LocalRuntime() as runtime:
            PlanScheduler(runtime, cache=cache).execute(graph)
        cache.clear()
        assert len(cache) == 0

    def test_concurrent_same_key_coalesces_to_one_execution(self):
        """Racing stages with one key must produce exactly once (a fused
        sweep's shared prefix), the rest served after waiting."""
        cache = PlanCache()
        reference = job_fingerprint(LocalRuntime().run(norm_job(), norm_splits()))
        graph = JobGraph("race")
        stages = [
            job_stage(graph, f"s{i}", key=("shared-prefix",)) for i in range(4)
        ]
        with LocalRuntime() as runtime:
            run = PlanScheduler(runtime, cache=cache, concurrent=True).execute(graph)
        results = [run.result_of(stage) for stage in stages]
        assert all(result is results[0] for result in results)  # one object
        assert job_fingerprint(results[0]) == reference
        assert cache.stats() == {"entries": 1, "hits": 3, "misses": 1}
        assert sum(e.from_cache for e in run.executions) == 3

    def test_failed_producer_wakes_a_waiter(self):
        """A producer that raises must not wedge coalesced waiters."""
        import threading

        cache = PlanCache()
        calls = []
        release = threading.Event()

        def flaky_produce():
            calls.append(threading.get_ident())
            if len(calls) == 1:
                release.set()
                raise RuntimeError("first producer dies")
            return "value"

        outcomes = []

        def worker():
            try:
                outcomes.append(cache.compute(("k",), flaky_produce))
            except RuntimeError:
                outcomes.append("raised")

        first = threading.Thread(target=worker)
        second = threading.Thread(target=worker)
        first.start()
        release.wait(timeout=5)
        second.start()
        first.join()
        second.join()
        assert "raised" in outcomes
        assert ("value", True) in outcomes
        # a later caller hits the stored entry
        assert cache.compute(("k",), flaky_produce) == ("value", False)

    def test_repeated_producer_failures_do_not_deadlock(self):
        """A *second* failing producer must also hand off, never wedging
        the remaining waiters (regression: the failure path clears the
        reservation before waking, so every retry re-enters cleanly)."""
        cache = PlanCache()
        attempts = []

        def produce():
            attempts.append(threading.get_ident())
            if len(attempts) <= 2:
                raise RuntimeError(f"producer {len(attempts)} dies")
            return "value"

        outcomes = []

        def worker():
            try:
                outcomes.append(cache.compute(("k",), produce))
            except RuntimeError:
                outcomes.append("raised")

        workers = [threading.Thread(target=worker) for _ in range(4)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=10)
        assert not any(thread.is_alive() for thread in workers)  # no deadlock
        assert outcomes.count("raised") == 2
        assert ("value", True) in outcomes
        assert all(o == "raised" or o[0] == "value" for o in outcomes)
        assert cache.compute(("k",), produce) == ("value", False)


class TestPersistentPlanCache:
    def test_cross_process_shaped_reuse(self, tmp_path):
        """A fresh cache over the same directory (= a new process) serves
        the stage from disk, bit-identical to the produced original."""
        reference = None
        for round_index in range(2):
            cache = PlanCache(directory=tmp_path)
            graph = JobGraph("g")
            stage = job_stage(graph, "a", key=("norms", 1))
            with LocalRuntime() as runtime:
                run = PlanScheduler(runtime, cache=cache).execute(graph)
            result = run.result_of(stage)
            if round_index == 0:
                reference = job_fingerprint(result)
                assert cache.stats()["disk_writes"] == 1
                assert cache.disk_entries() == 1
            else:
                assert cache.stats()["disk_hits"] == 1
                assert cache.stats()["disk_writes"] == 0
                assert job_fingerprint(result) == reference
                assert run.cached_stage_names() == ["a"]

    def test_corrupt_file_degrades_to_miss(self, tmp_path):
        cache = PlanCache(directory=tmp_path)
        graph = JobGraph("g")
        job_stage(graph, "a", key=("norms", 1))
        with LocalRuntime() as runtime:
            PlanScheduler(runtime, cache=cache).execute(graph)
        path = cache.path_for(("norms", 1))
        for garbage in (b"", b"not a segment", path.read_bytes()[:20]):
            path.write_bytes(garbage)
            fresh = PlanCache(directory=tmp_path)
            graph = JobGraph("g")
            job_stage(graph, "a", key=("norms", 1))
            with LocalRuntime() as runtime:
                run = PlanScheduler(runtime, cache=fresh).execute(graph)
            assert fresh.disk_hits == 0  # treated as a miss, not an error
            assert fresh.disk_writes == 1  # and re-written intact
            assert run.cached_stage_names() == []

    def test_foreign_key_file_rejected(self, tmp_path):
        """A valid segment written for a *different* key never aliases."""
        cache = PlanCache(directory=tmp_path)
        graph = JobGraph("g")
        job_stage(graph, "a", key=("norms", 1))
        with LocalRuntime() as runtime:
            PlanScheduler(runtime, cache=cache).execute(graph)
        other = PlanCache(directory=tmp_path)
        cache.path_for(("other",)).write_bytes(cache.path_for(("norms", 1)).read_bytes())
        graph = JobGraph("g")
        job_stage(graph, "a", key=("other",))
        with LocalRuntime() as runtime:
            PlanScheduler(runtime, cache=other).execute(graph)
        assert other.disk_hits == 0

    def test_stats_omit_disk_keys_without_directory(self):
        assert set(PlanCache().stats()) == {"entries", "hits", "misses"}
        stats = PlanCache(directory=".").stats()
        assert {"disk_hits", "disk_writes"} <= set(stats)


# -- the hypothesis property: dependency order under random latencies ----------


@st.composite
def random_dags(draw):
    """A random DAG over 2..7 stages (edges only from earlier to later) plus
    a per-stage latency in [0, 20] ms."""
    count = draw(st.integers(min_value=2, max_value=7))
    edges = []
    for target in range(1, count):
        for source in range(target):
            if draw(st.booleans()):
                edges.append((source, target))
    latencies = draw(
        st.lists(st.integers(min_value=0, max_value=20), min_size=count, max_size=count)
    )
    return count, edges, latencies


@settings(max_examples=25, deadline=None)
@given(random_dags())
def test_scheduler_respects_dependency_order_under_latency(dag):
    """Every stage starts only after all its dependencies finished, no matter
    how the randomized latencies interleave the scheduler threads."""
    count, edges, latencies = dag
    events: list[tuple[str, int]] = []
    lock = threading.Lock()

    graph = JobGraph("property")
    stages = []
    for index in range(count):
        deps = tuple(stages[source] for source, target in edges if target == index)

        def build(ctx, index=index):
            with lock:
                events.append(("start", index))
            time.sleep(latencies[index] / 1000.0)
            with lock:
                events.append(("finish", index))
            return None  # master-only: the property is about ordering

        stages.append(graph.stage(f"s{index}", build, deps=deps))

    with LocalRuntime() as runtime:
        run = PlanScheduler(runtime, concurrent=True).execute(graph)

    position = {
        (kind, index): at for at, (kind, index) in enumerate(events)
    }
    for source, target in edges:
        assert position[("finish", source)] < position[("start", target)], (
            f"stage {target} started before its dependency {source} finished"
        )
    # every stage ran exactly once
    assert len(events) == 2 * count
    assert [e.stage.name for e in run.executions] == [f"s{i}" for i in range(count)]
