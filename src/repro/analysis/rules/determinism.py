"""DET rules: task code must be a pure function of its inputs and seeds.

Every equivalence contract in this repository — cross-engine, spill vs
in-memory, chaos vs fault-free, provider vs oracle — assumes a re-run task
attempt reproduces its emissions bit for bit.  These rules reject the
ambient-nondeterminism sources that silently break that: unseeded RNGs,
wall clocks and entropy, unordered-set iteration feeding emissions, and
process-local identity (``id``/salted ``hash``) reaching keys.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..findings import Finding
from ..model import ModuleModel, TaskRegion
from ..registry import RuleSpec, register_rule

#: RNG constructors that are only deterministic when explicitly seeded
_SEEDABLE_FACTORIES = frozenset({"numpy.random.default_rng", "random.Random"})

#: the legacy numpy global-state RNG surface — never allowed in task code,
#: seeded or not: global state is shared across tasks of one worker process
_NUMPY_GLOBAL_RNG = frozenset(
    f"numpy.random.{name}"
    for name in (
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "seed", "normal",
        "uniform", "standard_normal", "bytes", "get_state", "set_state",
    )
)

#: the stdlib module-level RNG surface (module-global Mersenne state)
_STDLIB_RANDOM = frozenset(
    f"random.{name}"
    for name in (
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "gauss", "normalvariate", "betavariate",
        "expovariate", "triangular", "seed", "getrandbits", "randbytes",
    )
)

#: wall-clock and entropy calls whose value differs per attempt/host
_CLOCK_AND_ENTROPY = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
        "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
        "secrets.randbits", "secrets.randbelow", "secrets.choice",
    }
)


def _task_calls(model: ModuleModel) -> Iterator[tuple[ast.Call, TaskRegion]]:
    """Every call inside a task region, innermost-region attributed."""
    for region in model.task_regions:
        for node in ast.walk(region.node):
            if isinstance(node, ast.Call) and model.task_region_of(node) is region:
                yield node, region


def check_unseeded_rng(model: ModuleModel) -> Iterator[Finding]:
    """DET001: RNG without an explicit seed (or with shared global state)."""
    for call, region in _task_calls(model):
        resolved = model.resolve(call.func)
        if resolved is None:
            continue
        if resolved in _SEEDABLE_FACTORIES and not call.args and not call.keywords:
            yield Finding(
                model.path, call.lineno, call.col_offset, "DET001",
                f"unseeded {resolved}() in {region.kind} {region.name!r}: "
                "derive the seed from config and task identity "
                "(e.g. default_rng(seed + task_index)) so retried attempts "
                "reproduce their emissions",
            )
        elif resolved in _NUMPY_GLOBAL_RNG or resolved in _STDLIB_RANDOM:
            yield Finding(
                model.path, call.lineno, call.col_offset, "DET001",
                f"{resolved}() uses shared global RNG state in {region.kind} "
                f"{region.name!r}: use a per-task numpy Generator seeded from "
                "config instead",
            )


def check_clock_entropy(model: ModuleModel) -> Iterator[Finding]:
    """DET002: wall clock / entropy reads inside task code."""
    for call, region in _task_calls(model):
        resolved = model.resolve(call.func)
        if resolved in _CLOCK_AND_ENTROPY:
            yield Finding(
                model.path, call.lineno, call.col_offset, "DET002",
                f"{resolved}() in {region.kind} {region.name!r} differs per "
                "attempt and host: task emissions must not depend on clocks "
                "or entropy (master-side phases time through ctx.timed)",
            )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _set_valued_names(func: ast.AST) -> set[str]:
    """Names whose every assignment in ``func`` is an unordered set."""
    set_named: set[str] = set()
    other: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        else:
            continue
        value = getattr(node, "value", None)
        for target in targets:
            if isinstance(target, ast.Name):
                bucket = set_named if value is not None and _is_set_expr(value) else other
                bucket.add(target.id)
    return set_named - other


def check_unordered_iteration(model: ModuleModel) -> Iterator[Finding]:
    """DET003: iterating an unordered set inside task code.

    Set iteration order depends on hash seeding and insertion history, so a
    loop over a set feeding ``yield`` or a sort key reorders emissions
    between attempts and hosts.  ``sorted(...)`` over the same set is the
    deterministic fix and is never flagged.  Dict views are *not* flagged:
    CPython dicts iterate in insertion order and the runtime guarantees
    deterministic arrival order.
    """
    for region in model.task_regions:
        functions = [
            node
            for node in ast.walk(region.node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        ] or [region.node]
        for func in functions:
            local_sets = _set_valued_names(func)
            iter_exprs = []
            for node in ast.walk(func):
                if isinstance(node, ast.For):
                    iter_exprs.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    iter_exprs.extend(gen.iter for gen in node.generators)
            for expr in iter_exprs:
                if model.task_region_of(expr) is not region:
                    continue
                is_set = _is_set_expr(expr) or (
                    isinstance(expr, ast.Name) and expr.id in local_sets
                )
                if is_set:
                    yield Finding(
                        model.path, expr.lineno, expr.col_offset, "DET003",
                        f"iteration over an unordered set in {region.kind} "
                        f"{region.name!r}: set order varies across attempts "
                        "and hosts — iterate sorted(...) instead",
                    )


def check_identity_hash(model: ModuleModel) -> Iterator[Finding]:
    """DET004: ``id()`` / builtin ``hash()`` inside task code.

    ``id`` is a process-local address and builtin ``hash`` is salted per
    process (str/bytes), so neither may feed emitted keys, partitioning or
    dedup decisions — use stable key bytes (CRC32 of the encoded key, as
    ``HashPartitioner._stable_hash`` does) instead.
    """
    for call, region in _task_calls(model):
        if isinstance(call.func, ast.Name) and call.func.id in ("id", "hash"):
            if call.func.id in model.aliases:
                continue  # shadowed by an import — not the builtin
            yield Finding(
                model.path, call.lineno, call.col_offset, "DET004",
                f"builtin {call.func.id}() in {region.kind} {region.name!r} is "
                "process-local (id: address; hash: salted per process): use "
                "stable key bytes, e.g. zlib.crc32 of the encoded key",
            )


def _register() -> None:
    register_rule(RuleSpec(
        code="DET001", name="unseeded-rng", category="determinism",
        summary="task code draws randomness without an explicit per-task seed",
        check=check_unseeded_rng,
    ))
    register_rule(RuleSpec(
        code="DET002", name="clock-entropy", category="determinism",
        summary="task code reads wall clocks, uuids or OS entropy",
        check=check_clock_entropy,
    ))
    register_rule(RuleSpec(
        code="DET003", name="unordered-iteration", category="determinism",
        summary="task code iterates an unordered set (emission order hazard)",
        check=check_unordered_iteration,
    ))
    register_rule(RuleSpec(
        code="DET004", name="identity-hash", category="determinism",
        summary="task code calls id()/hash(), which are process-local",
        check=check_identity_hash,
    ))


_register()
