"""Voronoi diagram-based data partitioning (paper Section 2.3).

Given a pivot set ``P`` of size ``M``, every object is assigned to the
partition of its closest pivot, splitting the space into ``M`` "generalized
Voronoi cells".  Footnote 1 of the paper fixes the tie-break: when several
pivots are equally close, the object goes to the partition that currently has
the *smallest number of objects*.

Assigning an object costs ``M`` distance computations (object-to-pivot pairs),
which the paper explicitly includes in its computation-selectivity measure;
all assignments therefore run through the counted :class:`~repro.core.distance.Metric`.
"""

from __future__ import annotations

import numpy as np

from .dataset import Dataset
from .distance import Metric

__all__ = ["VoronoiPartitioner", "PartitionAssignment"]

#: relative slack used when detecting distance ties between pivots
_TIE_RTOL = 1e-12


class PartitionAssignment:
    """The result of Voronoi-partitioning one dataset.

    Attributes
    ----------
    partition_ids:
        ``(m,)`` int array — index of the closest pivot per object row.
    pivot_distances:
        ``(m,)`` float array — distance from each object to its pivot
        (``k1.dist`` in Algorithm 3; reused by every pruning rule).
    num_partitions:
        Total number of pivots ``M`` (cells may be empty).
    """

    __slots__ = ("partition_ids", "pivot_distances", "num_partitions", "_rows_by_pid")

    def __init__(
        self, partition_ids: np.ndarray, pivot_distances: np.ndarray, num_partitions: int
    ) -> None:
        self.partition_ids = np.asarray(partition_ids, dtype=np.int64)
        self.pivot_distances = np.asarray(pivot_distances, dtype=np.float64)
        if self.partition_ids.shape != self.pivot_distances.shape:
            raise ValueError("partition_ids and pivot_distances must align")
        self.num_partitions = int(num_partitions)
        self._rows_by_pid: dict[int, np.ndarray] | None = None

    def rows_of(self, partition_id: int) -> np.ndarray:
        """Positional rows of the objects in the given cell (possibly empty)."""
        if self._rows_by_pid is None:
            order = np.argsort(self.partition_ids, kind="stable")
            sorted_pids = self.partition_ids[order]
            boundaries = np.searchsorted(sorted_pids, np.arange(self.num_partitions + 1))
            self._rows_by_pid = {
                pid: order[boundaries[pid] : boundaries[pid + 1]]
                for pid in range(self.num_partitions)
            }
        return self._rows_by_pid[int(partition_id)]

    def counts(self) -> np.ndarray:
        """Objects per cell, shape ``(num_partitions,)``."""
        return np.bincount(self.partition_ids, minlength=self.num_partitions)

    def non_empty_partitions(self) -> list[int]:
        """Ids of cells that contain at least one object."""
        return [int(p) for p in np.flatnonzero(self.counts() > 0)]

    def __len__(self) -> int:
        return self.partition_ids.shape[0]


class VoronoiPartitioner:
    """Assigns objects to generalized Voronoi cells of a pivot set.

    Parameters
    ----------
    pivots:
        ``(M, n)`` array of pivot coordinates.  Pivots need not belong to the
        dataset being partitioned (they are selected from ``R`` but partition
        ``S`` as well).
    metric:
        The counted distance metric shared by the whole join pipeline.
    """

    def __init__(self, pivots: np.ndarray, metric: Metric) -> None:
        pivots = np.asarray(pivots, dtype=np.float64)
        if pivots.ndim != 2 or pivots.shape[0] == 0:
            raise ValueError(f"pivots must be a non-empty 2-d array, got shape {pivots.shape}")
        self.pivots = pivots
        self.metric = metric

    @property
    def num_partitions(self) -> int:
        """Number of pivots ``M`` — one Voronoi cell each."""
        return self.pivots.shape[0]

    def assign_points(
        self, points: np.ndarray, initial_counts: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assign each row of ``points`` to its closest pivot.

        Ties are broken toward the cell with the fewest objects *so far*
        (running counts over this call, seeded by ``initial_counts`` so that
        chunked mappers can keep the invariant across splits).

        Returns ``(partition_ids, pivot_distances)``.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        m = points.shape[0]
        pids = np.empty(m, dtype=np.int64)
        dists = np.empty(m, dtype=np.float64)
        counts = (
            np.zeros(self.num_partitions, dtype=np.int64)
            if initial_counts is None
            else np.asarray(initial_counts, dtype=np.int64).copy()
        )
        block = 1024
        for start in range(0, m, block):
            chunk = points[start : start + block]
            all_d = self.metric.cross_distances(chunk, self.pivots)
            best = all_d.min(axis=1)
            nearest = all_d.argmin(axis=1)
            tol = _TIE_RTOL * np.maximum(best, 1.0)
            tie_rows = np.flatnonzero((all_d <= (best + tol)[:, None]).sum(axis=1) > 1)
            pids[start : start + chunk.shape[0]] = nearest
            dists[start : start + chunk.shape[0]] = best
            if tie_rows.size:
                # footnote 1: a tied object goes to the smallest partition.
                # Resolve sequentially so earlier assignments influence later
                # ones, exactly as a streaming mapper would.
                counts += np.bincount(
                    np.delete(nearest, tie_rows), minlength=self.num_partitions
                )
                for row in tie_rows:
                    tied = np.flatnonzero(all_d[row] <= best[row] + tol[row])
                    pid = int(tied[np.argmin(counts[tied])])
                    pids[start + row] = pid
                    counts[pid] += 1
            else:
                counts += np.bincount(nearest, minlength=self.num_partitions)
        return pids, dists

    def assign(self, dataset: Dataset) -> PartitionAssignment:
        """Partition a whole dataset in one pass."""
        pids, dists = self.assign_points(dataset.points)
        return PartitionAssignment(pids, dists, self.num_partitions)

    def pivot_distance_matrix(self) -> np.ndarray:
        """The ``M x M`` pivot-to-pivot distance matrix ``|p_i, p_j|``.

        Counted: the paper includes pivot pairs in computation selectivity.
        """
        return self.metric.cross_distances(self.pivots, self.pivots)
