"""Unit tests for JoinOutcome accounting and configuration validation."""

import pytest

from repro.core import KnnJoinResult
from repro.joins.base import (
    PAIRS_GROUP,
    PAIRS_NAME,
    REPLICA_GROUP,
    REPLICA_NAME,
    BlockJoinConfig,
    JoinConfig,
    JoinOutcome,
    PgbjConfig,
)
from repro.mapreduce import Cluster
from repro.mapreduce.stats import JobStats, TaskStat


def make_outcome(r_size=100, s_size=200):
    result = KnnJoinResult(2)
    stats_a = JobStats(job_name="one")
    stats_a.shuffle_bytes = 1000
    stats_a.shuffle_records = 10
    stats_a.map_tasks.append(TaskStat("m0", "map", 0.5, 1, 1))
    stats_b = JobStats(job_name="two")
    stats_b.shuffle_bytes = 500
    stats_b.shuffle_records = 5
    stats_b.reduce_tasks.append(TaskStat("r0", "reduce", 1.0, 1, 1))
    outcome = JoinOutcome(
        algorithm="demo",
        result=result,
        r_size=r_size,
        s_size=s_size,
        k=2,
        master_phases={"pivot_selection": 0.25},
        job_stats=[stats_a, stats_b],
        job_phase_names=["partitioning", "join"],
        master_distance_pairs=40,
    )
    outcome.counters.incr(PAIRS_GROUP, PAIRS_NAME, 160)
    outcome.counters.incr(REPLICA_GROUP, REPLICA_NAME, 300)
    return outcome


class TestMeasurements:
    def test_distance_pairs_adds_master_and_jobs(self):
        assert make_outcome().distance_pairs == 200

    def test_selectivity(self):
        assert make_outcome().selectivity() == pytest.approx(200 / 20_000)

    def test_shuffle_totals(self):
        outcome = make_outcome()
        assert outcome.shuffle_bytes() == 1500
        assert outcome.shuffle_records() == 15

    def test_replication(self):
        outcome = make_outcome()
        assert outcome.replication_of_s() == 300
        assert outcome.avg_replication_of_s() == pytest.approx(1.5)

    def test_simulated_seconds_includes_master_phases(self):
        outcome = make_outcome()
        cluster = Cluster(num_nodes=4)
        job_time = sum(s.simulated_seconds(cluster) for s in outcome.job_stats)
        assert outcome.simulated_seconds(cluster) == pytest.approx(0.25 + job_time)

    def test_phase_seconds_merges_master_and_jobs(self):
        outcome = make_outcome()
        phases = outcome.phase_seconds(Cluster(num_nodes=4))
        assert set(phases) == {"pivot_selection", "partitioning", "join"}
        assert phases["pivot_selection"] == 0.25

    def test_more_nodes_not_slower(self):
        outcome = make_outcome()
        slow = outcome.simulated_seconds(Cluster(num_nodes=1))
        fast = outcome.simulated_seconds(Cluster(num_nodes=16))
        assert fast <= slow


class TestConfigValidation:
    def test_k_positive(self):
        with pytest.raises(ValueError):
            JoinConfig(k=0)

    def test_reducers_positive(self):
        with pytest.raises(ValueError):
            JoinConfig(num_reducers=0)

    def test_split_size_positive(self):
        with pytest.raises(ValueError):
            JoinConfig(split_size=0)

    def test_pgbj_pivots_positive(self):
        with pytest.raises(ValueError):
            PgbjConfig(num_pivots=0)

    def test_with_changes_copies(self):
        base = PgbjConfig(k=10, num_pivots=32)
        changed = base.with_changes(k=20)
        assert changed.k == 20
        assert changed.num_pivots == 32
        assert base.k == 10

    def test_block_config_num_blocks(self):
        assert BlockJoinConfig(num_reducers=16).num_blocks == 4
        assert BlockJoinConfig(num_reducers=2).num_blocks == 1
