"""Property-based end-to-end tests: random worlds, exact agreement.

The strongest claim in the repository — all distributed algorithms equal
brute force — checked over hypothesis-generated datasets, ks, reducer counts
and pivot counts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    HBRJ,
    PBJ,
    PGBJ,
    BlockJoinConfig,
    BroadcastJoin,
    JoinConfig,
    PgbjConfig,
)
from repro.core import Dataset, KnnJoinResult, brute_force_knn_join, get_metric


@st.composite
def join_world(draw):
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    num_r = draw(st.integers(5, 60))
    num_s = draw(st.integers(5, 60))
    dims = draw(st.integers(1, 5))
    k = draw(st.integers(1, min(8, num_s)))
    # integer grid coordinates provoke ties; float coordinates don't
    if draw(st.booleans()):
        r_points = rng.integers(0, 8, size=(num_r, dims)).astype(float)
        s_points = rng.integers(0, 8, size=(num_s, dims)).astype(float)
    else:
        r_points = rng.random((num_r, dims))
        s_points = rng.random((num_s, dims))
    r = Dataset(r_points, name="r")
    s = Dataset(s_points, ids=np.arange(10_000, 10_000 + num_s), name="s")
    num_reducers = draw(st.sampled_from([1, 2, 4, 9]))
    num_pivots = draw(st.integers(1, min(12, num_r)))
    return r, s, k, num_reducers, num_pivots, seed


def truth_of(r, s, k):
    return KnnJoinResult.from_dict(
        k, brute_force_knn_join(get_metric("l2"), r.points, r.ids, s.points, s.ids, k)
    )


@given(join_world())
@settings(max_examples=25, deadline=None)
def test_pgbj_equals_brute_force(world):
    r, s, k, num_reducers, num_pivots, seed = world
    config = PgbjConfig(
        k=k, num_reducers=num_reducers, num_pivots=num_pivots, seed=seed, split_size=32
    )
    outcome = PGBJ(config).run(r, s)
    assert outcome.result.same_distances_as(truth_of(r, s, k))


@given(join_world())
@settings(max_examples=15, deadline=None)
def test_pbj_equals_brute_force(world):
    r, s, k, num_reducers, num_pivots, seed = world
    config = BlockJoinConfig(
        k=k, num_reducers=num_reducers, num_pivots=num_pivots, seed=seed, split_size=32
    )
    outcome = PBJ(config).run(r, s)
    assert outcome.result.same_distances_as(truth_of(r, s, k))


@given(join_world())
@settings(max_examples=15, deadline=None)
def test_hbrj_equals_brute_force(world):
    r, s, k, num_reducers, _, seed = world
    config = BlockJoinConfig(k=k, num_reducers=num_reducers, seed=seed, split_size=32)
    outcome = HBRJ(config).run(r, s)
    assert outcome.result.same_distances_as(truth_of(r, s, k))


@given(join_world())
@settings(max_examples=10, deadline=None)
def test_broadcast_equals_brute_force(world):
    r, s, k, num_reducers, _, seed = world
    outcome = BroadcastJoin(
        JoinConfig(k=k, num_reducers=num_reducers, seed=seed, split_size=32)
    ).run(r, s)
    assert outcome.result.same_distances_as(truth_of(r, s, k))


@given(join_world())
@settings(max_examples=10, deadline=None)
def test_pgbj_structural_invariants(world):
    """Cardinality k*|R|, sorted lists, shuffle = |R| + RP(S) records."""
    r, s, k, num_reducers, num_pivots, seed = world
    config = PgbjConfig(
        k=k, num_reducers=num_reducers, num_pivots=num_pivots, seed=seed, split_size=32
    )
    outcome = PGBJ(config).run(r, s)
    outcome.result.validate(r.ids, len(s))
    assert outcome.result.total_pairs() == min(k, len(s)) * len(r)
    join_stats = outcome.job_stats[1]
    assert join_stats.shuffle_records == len(r) + outcome.replication_of_s()
    assert 1.0 <= outcome.avg_replication_of_s() <= num_reducers
