"""Plain-text rendering of paper-style tables and figure series."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

__all__ = ["format_table", "Series", "format_series"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table (the shape the paper's tables use)."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells)) if cells else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(widths))))
    return "\n".join(lines)


@dataclass
class Series:
    """One line of a figure: named y values over shared x values."""

    name: str
    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        """Append the next y value."""
        self.values.append(float(value))


def format_series(
    title: str, x_label: str, xs: Sequence[object], series: Sequence[Series]
) -> str:
    """Render a figure as a table: one row per x, one column per line."""
    headers = [x_label] + [line.name for line in series]
    rows = []
    for index, x in enumerate(xs):
        rows.append([x] + [line.values[index] for line in series])
    return format_table(headers, rows, title=title)
