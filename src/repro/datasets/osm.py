"""Synthetic replica of the paper's OpenStreetMap extract.

The paper's OSM workload is 10M records of ``(longitude, latitude)`` plus a
variable-length description.  What the join algorithms feel is (a) 2-d,
(b) heavily clustered geometry — settlements and road networks — and (c)
non-geometric payload bytes riding through the shuffle.  This generator
produces exactly that: a mixture of dense city clusters, points scattered
along roads connecting cities, and a rural uniform background, with
log-normal payload sizes.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset

__all__ = ["generate_osm"]


def generate_osm(
    num_objects: int,
    num_cities: int = 12,
    seed: int = 0,
    city_fraction: float = 0.65,
    road_fraction: float = 0.25,
    with_payload: bool = True,
    name: str = "osm",
) -> Dataset:
    """Generate clustered 2-d geo points with description payloads.

    ``city_fraction`` of points form Gaussian blobs around city centers,
    ``road_fraction`` lie along straight roads between random city pairs
    (with jitter), and the remainder is uniform background.  Coordinates are
    degrees in a continental-scale box.
    """
    if num_objects < 1:
        raise ValueError("num_objects must be >= 1")
    if num_cities < 2:
        raise ValueError("num_cities must be >= 2 (roads need endpoints)")
    if not 0.0 <= city_fraction + road_fraction <= 1.0:
        raise ValueError("city_fraction + road_fraction must be within [0, 1]")
    rng = np.random.default_rng(seed)
    lon_range = (-10.0, 30.0)
    lat_range = (35.0, 60.0)

    centers = np.column_stack(
        [
            rng.uniform(*lon_range, size=num_cities),
            rng.uniform(*lat_range, size=num_cities),
        ]
    )
    # big cities attract more objects and are denser
    weights = rng.dirichlet(np.full(num_cities, 1.2))
    sigmas = 0.08 + 0.5 * rng.random(num_cities)

    num_city = int(num_objects * city_fraction)
    num_road = int(num_objects * road_fraction)
    num_rural = num_objects - num_city - num_road

    city_labels = rng.choice(num_cities, size=num_city, p=weights)
    city_points = centers[city_labels] + rng.normal(
        0.0, 1.0, size=(num_city, 2)
    ) * sigmas[city_labels][:, None]

    road_a = rng.integers(0, num_cities, size=num_road)
    road_b = (road_a + 1 + rng.integers(0, num_cities - 1, size=num_road)) % num_cities
    positions = rng.random(num_road)[:, None]
    road_points = centers[road_a] + positions * (centers[road_b] - centers[road_a])
    road_points += rng.normal(0.0, 0.05, size=(num_road, 2))

    rural_points = np.column_stack(
        [
            rng.uniform(*lon_range, size=num_rural),
            rng.uniform(*lat_range, size=num_rural),
        ]
    )

    points = np.vstack([city_points, road_points, rural_points])
    points[:, 0] = np.clip(points[:, 0], *lon_range)
    points[:, 1] = np.clip(points[:, 1], *lat_range)
    rng.shuffle(points, axis=0)

    payload = None
    if with_payload:
        # description lengths: log-normal, 10..500 bytes, like free-text tags
        payload = np.clip(
            rng.lognormal(mean=3.6, sigma=0.7, size=num_objects), 10, 500
        ).astype(np.int64)
    return Dataset(points, payload_bytes=payload, name=name)
