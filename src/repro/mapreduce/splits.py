"""Helpers to turn datasets into job input splits."""

from __future__ import annotations

from repro.core.dataset import Dataset

from .types import InputSplit, ObjectRecord

__all__ = ["dataset_splits", "records_from_dataset", "split_records"]


def records_from_dataset(dataset: Dataset, tag: str) -> list[tuple[str, ObjectRecord]]:
    """Flatten a dataset into ``(tag, ObjectRecord)`` input pairs."""
    payloads = dataset.payload_bytes
    return [
        (
            tag,
            ObjectRecord(
                dataset=tag,
                object_id=int(dataset.ids[row]),
                point=dataset.points[row],
                payload=0 if payloads is None else int(payloads[row]),
            ),
        )
        for row in range(len(dataset))
    ]


def split_records(records: list, split_size: int) -> list[InputSplit]:
    """Chunk a record list into fixed-size input splits."""
    if split_size < 1:
        raise ValueError("split_size must be >= 1")
    return [
        InputSplit(split_id=index, records=records[start : start + split_size])
        for index, start in enumerate(range(0, len(records), split_size))
    ]


def dataset_splits(
    r: Dataset, s: Dataset, split_size: int
) -> list[InputSplit]:
    """Input splits covering ``R`` then ``S`` — the first job's input."""
    records = records_from_dataset(r, "R") + records_from_dataset(s, "S")
    return split_records(records, split_size)
