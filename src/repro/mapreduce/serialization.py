"""Byte accounting for shuffled records.

The paper reports *shuffling cost* in gigabytes moved from mappers to
reducers.  A real Hadoop job serializes keys and values with Writables; this
module estimates those on-the-wire sizes without actually serializing,
using fixed-width primitives (8-byte ints/floats, UTF-8 strings) plus small
per-container framing.  Any object may opt in by exposing an
``estimated_bytes() -> int`` method (e.g. :class:`~repro.mapreduce.types.ObjectRecord`).
"""

from __future__ import annotations

import struct

import numpy as np

from .types import RecordBlock

__all__ = [
    "estimate_bytes",
    "record_count",
    "shuffle_sort_key",
    "encode_record_block",
    "decode_record_block",
]

#: per-container framing overhead (length prefix), bytes
_FRAME = 4


def record_count(value: object) -> int:
    """Logical records a shuffled value represents.

    A :class:`~repro.mapreduce.types.RecordBlock` counts its rows; any other
    value is one record.  All shuffle and task accounting goes through this,
    so columnar blocks stay invisible to the paper's record-count metrics.
    """
    if isinstance(value, RecordBlock):
        return len(value)
    return 1


def estimate_bytes(obj: object) -> int:
    """Estimated serialized size of a key or value, in bytes.

    Raises ``TypeError`` for unsupported types rather than guessing — shuffle
    accounting is a headline measurement and must not silently drift.
    """
    if obj is None:
        return 1
    if isinstance(obj, (bool, np.bool_)):
        # np.bool_ is not an int/np.integer subclass: without this it would
        # fall through every branch and hit the TypeError below
        return 1
    if isinstance(obj, (int, np.integer)):
        return 8
    if isinstance(obj, (float, np.floating)):
        return 8
    if isinstance(obj, str):
        return _FRAME + len(obj.encode("utf-8"))
    if isinstance(obj, (bytes, bytearray)):
        return _FRAME + len(obj)
    if isinstance(obj, np.ndarray):
        return _FRAME + int(obj.nbytes)
    estimator = getattr(obj, "estimated_bytes", None)
    if callable(estimator):
        return int(estimator())
    if isinstance(obj, (tuple, list)):
        return _FRAME + sum(estimate_bytes(item) for item in obj)
    if isinstance(obj, dict):
        return _FRAME + sum(
            estimate_bytes(key) + estimate_bytes(value) for key, value in obj.items()
        )
    raise TypeError(
        f"cannot estimate serialized size of {type(obj).__name__}; "
        "add an estimated_bytes() method"
    )


def shuffle_sort_key(key: object) -> tuple:
    """Total-order sort key for heterogeneous shuffle keys.

    Hadoop sorts serialized bytes, so a job may freely mix key types; naive
    ``sorted(keys)`` raises ``TypeError`` as soon as e.g. ``int`` and ``str``
    keys meet in one reducer.  This key ranks values by a type class first
    (numbers < strings < bytes < sequences < everything else) and compares
    natively within a class, so same-type jobs keep their historical order
    and mixed-type jobs get a deterministic one.
    """
    if key is None:
        return (0, 0)
    if isinstance(key, (bool, int, float, np.integer, np.floating, np.bool_)):
        return (1, key)  # mixed numerics compare exactly, no float coercion
    if isinstance(key, str):
        return (2, key)
    if isinstance(key, (bytes, bytearray)):
        return (3, bytes(key))
    if isinstance(key, (tuple, list)):
        return (4, tuple(shuffle_sort_key(item) for item in key))
    # exotic same-type keys still work if orderable; unorderable ones raise,
    # as they always did
    return (5, type(key).__name__, key)


# -- columnar wire format ------------------------------------------------------
#
# The canonical byte encoding of a RecordBlock, as a real shuffle (or a
# spill-to-disk path) would frame it: a fixed header followed by the six
# column buffers.  The in-process runtime passes blocks by reference and only
# *estimates* sizes, so this is not on the hot path — it exists so the block
# layout is pinned by tests and reusable by any future out-of-process shuffle.

_BLOCK_MAGIC = b"RBLK"
_BLOCK_HEADER = struct.Struct("<4sII")  # magic, rows, dims


def encode_record_block(block: RecordBlock) -> bytes:
    """Serialize a block to the compact columnar wire format."""
    rows = len(block)
    dims = block.points.shape[1] if block.points.ndim == 2 else 0
    return b"".join(
        (
            _BLOCK_HEADER.pack(_BLOCK_MAGIC, rows, dims),
            np.ascontiguousarray(block.is_r, dtype=np.uint8).tobytes(),
            np.ascontiguousarray(block.object_ids, dtype=np.int64).tobytes(),
            np.ascontiguousarray(block.points, dtype=np.float64).tobytes(),
            np.ascontiguousarray(block.payloads, dtype=np.int64).tobytes(),
            np.ascontiguousarray(block.partition_ids, dtype=np.int64).tobytes(),
            np.ascontiguousarray(block.pivot_distances, dtype=np.float64).tobytes(),
        )
    )


#: bytes per row beyond the point coordinates: is_r (1) + object_ids (8) +
#: payloads (8) + partition_ids (8) + pivot_distances (8)
_ROW_FIXED_BYTES = 1 + 8 + 8 + 8 + 8


def decode_record_block(data: bytes) -> RecordBlock:
    """Inverse of :func:`encode_record_block`.

    Validates the buffer length against the header before touching any
    column, so a truncated or padded stream raises a clear ``ValueError``
    instead of a cryptic ``numpy.frombuffer`` error partway through.
    """
    if len(data) < _BLOCK_HEADER.size:
        raise ValueError(
            f"truncated RecordBlock stream: {len(data)} bytes is shorter "
            f"than the {_BLOCK_HEADER.size}-byte header"
        )
    magic, rows, dims = _BLOCK_HEADER.unpack_from(data)
    if magic != _BLOCK_MAGIC:
        raise ValueError("not a RecordBlock byte stream")
    expected = _BLOCK_HEADER.size + rows * (_ROW_FIXED_BYTES + 8 * dims)
    if len(data) != expected:
        kind = "truncated" if len(data) < expected else "oversized"
        raise ValueError(
            f"{kind} RecordBlock stream: header declares {rows} rows x "
            f"{dims} dims ({expected} bytes), got {len(data)} bytes"
        )
    offset = _BLOCK_HEADER.size

    def column(dtype, count, shape=None):
        nonlocal offset
        array = np.frombuffer(data, dtype=dtype, count=count, offset=offset).copy()
        offset += array.nbytes
        return array if shape is None else array.reshape(shape)

    return RecordBlock(
        is_r=column(np.uint8, rows).astype(bool),
        object_ids=column(np.int64, rows),
        points=column(np.float64, rows * dims, shape=(rows, dims)),
        payloads=column(np.int64, rows),
        partition_ids=column(np.int64, rows),
        pivot_distances=column(np.float64, rows),
    )
