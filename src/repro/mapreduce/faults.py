"""Structured, deterministic fault injection for the MapReduce runtime.

The runtime has always taken a bare ``fault_injector`` callable
(``(kind, task_id, attempt) -> bool``) that can only *crash* an attempt.
This module replaces it with a seeded :class:`ChaosPlan` — a value object
describing a mix of failure modes:

* ``crash``   — the attempt fails before it runs (the historical injector).
* ``delay``   — the attempt runs, but sleeps ``delay_s`` wall-clock seconds
  first: a straggler.  Task CPU durations are measured with
  ``time.thread_time()``, so delays never distort the paper's measurements.
* ``kill``    — the worker *process* executing the attempt dies mid-batch
  (``os._exit``), breaking the pool.  On engines without worker processes
  (serial, threads) the kill degrades to a crash.
* ``corrupt`` — one spill segment written by the (successful) attempt has a
  byte flipped on disk; the per-entry CRC32 catches it at reduce time.
* ``delete``  — one spill segment written by the attempt is removed.

Every decision is a pure function of ``(seed, rule, task identity,
attempt)`` — a hash, never a call-sequence-dependent RNG — so the *same
tasks* fail in the *same ways* regardless of engine, scheduling order or
concurrency.  That is what lets CI assert bit-identical results under chaos
across all engines.

Plans are built programmatically (``ChaosPlan(rules=(...), seed=7)``), from
a compact spec string (:meth:`ChaosPlan.from_spec`, the ``--chaos-spec`` CLI
flag), or from the environment (:meth:`ChaosPlan.from_env`, the
``REPRO_CHAOS`` / ``REPRO_CHAOS_SEED`` variables the bench harness and the
chaos CI leg read).  Spec grammar — semicolon-separated rules::

    action[:key=value]*  [; ...]  [; seed=N]

    crash:rate=0.2;delay:rate=0.1:delay=0.05;corrupt:rate=0.05;seed=42

Rule keys: ``rate`` (firing probability, default 1), ``kind`` (``map`` /
``reduce`` / ``*``), ``job`` (substring of the job name), ``task``
(substring of the task id), ``attempt`` (restrict to one attempt number —
``attempt=1`` makes chaos hit first attempts only, so retries always
converge), and ``delay`` (sleep seconds, delay rules only).

The old bare-callable signature keeps working: the runtime wraps it in
:class:`LegacyFaultInjector`, which maps "callable returned True" to a
``crash``.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "ChaosPlan",
    "ChaosRule",
    "ChaosAction",
    "LegacyFaultInjector",
    "resolve_chaos",
    "CHAOS_ENV",
    "CHAOS_SEED_ENV",
]

#: environment variables the bench harness and CI chaos leg read
CHAOS_ENV = "REPRO_CHAOS"
CHAOS_SEED_ENV = "REPRO_CHAOS_SEED"

#: actions evaluated before an attempt is dispatched
ATTEMPT_ACTIONS = ("crash", "delay", "kill")
#: actions applied to a successful map attempt's spilled segments
SEGMENT_ACTIONS = ("corrupt", "delete")


@dataclass(frozen=True)
class ChaosRule:
    """One failure mode plus the selector deciding which attempts it hits."""

    action: str
    rate: float = 1.0
    kind: str = "*"  # "map" | "reduce" | "*"
    job: str = "*"  # substring of the job name; "*" matches any
    task: str = "*"  # substring of the task id; "*" matches any
    attempt: int | None = None  # fire on this attempt number only
    delay_s: float = 0.05  # sleep injected by delay rules

    def __post_init__(self) -> None:
        if self.action not in ATTEMPT_ACTIONS + SEGMENT_ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r}; known: "
                f"{', '.join(ATTEMPT_ACTIONS + SEGMENT_ACTIONS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"chaos rate must be in [0, 1], got {self.rate}")
        if self.kind not in ("map", "reduce", "*"):
            raise ValueError(f"chaos kind must be map, reduce or *, got {self.kind!r}")
        if self.attempt is not None and self.attempt < 1:
            raise ValueError("chaos attempt restriction must be >= 1")
        if self.delay_s < 0:
            raise ValueError("chaos delay must be >= 0")

    def matches(self, job_name: str, kind: str, task_id: str, attempt: int) -> bool:
        if self.kind != "*" and self.kind != kind:
            return False
        if self.job != "*" and self.job not in job_name:
            return False
        if self.task != "*" and self.task not in task_id:
            return False
        if self.attempt is not None and self.attempt != attempt:
            return False
        return True


@dataclass(frozen=True)
class ChaosAction:
    """A fired attempt-level decision the scheduler acts on."""

    action: str  # "crash" | "delay" | "kill"
    delay_s: float = 0.0
    rule_index: int = 0


def _coin(seed: int, rule_index: int, task_id: str, attempt: int) -> float:
    """Deterministic uniform [0, 1) draw for one (rule, attempt) identity.

    A hash of the identity, not a sequential RNG: the draw is independent of
    how many other draws happened before it, so engines that schedule tasks
    in different orders (or concurrently) see identical chaos.
    """
    digest = hashlib.sha256(
        f"{seed}|{rule_index}|{task_id}|{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, deterministic set of chaos rules.

    Rules are evaluated in order; the first one that matches *and* fires
    (its identity-hashed coin lands under ``rate``) wins.  Attempt-level
    rules (crash/delay/kill) are consulted by the scheduler before dispatch;
    segment-level rules (corrupt/delete) after a successful spilling map
    attempt, picking one of its segments deterministically.
    """

    rules: tuple[ChaosRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    # -- scheduler queries -----------------------------------------------------

    def attempt_action(
        self, job_name: str, kind: str, task_id: str, attempt: int
    ) -> ChaosAction | None:
        """The crash/delay/kill decision for one task attempt, if any."""
        for index, rule in enumerate(self.rules):
            if rule.action not in ATTEMPT_ACTIONS:
                continue
            if not rule.matches(job_name, kind, task_id, attempt):
                continue
            if _coin(self.seed, index, task_id, attempt) < rule.rate:
                return ChaosAction(
                    action=rule.action, delay_s=rule.delay_s, rule_index=index
                )
        return None

    def segment_action(
        self, job_name: str, kind: str, task_id: str, attempt: int
    ) -> str | None:
        """The corrupt/delete decision for one successful map attempt."""
        for index, rule in enumerate(self.rules):
            if rule.action not in SEGMENT_ACTIONS:
                continue
            if not rule.matches(job_name, kind, task_id, attempt):
                continue
            if _coin(self.seed, index, task_id, attempt) < rule.rate:
                return rule.action
        return None

    def segment_choice(self, task_id: str, attempt: int, count: int) -> int:
        """Which of the attempt's ``count`` segments the action targets."""
        if count <= 1:
            return 0
        return int(_coin(self.seed, -1, task_id, attempt) * count)

    def describe(self) -> str:
        parts = []
        for rule in self.rules:
            selectors = []
            if rule.rate != 1.0:
                selectors.append(f"rate={rule.rate}")
            if rule.kind != "*":
                selectors.append(f"kind={rule.kind}")
            if rule.job != "*":
                selectors.append(f"job={rule.job}")
            if rule.task != "*":
                selectors.append(f"task={rule.task}")
            if rule.attempt is not None:
                selectors.append(f"attempt={rule.attempt}")
            if rule.action == "delay":
                selectors.append(f"delay={rule.delay_s}")
            parts.append(":".join([rule.action, *selectors]))
        parts.append(f"seed={self.seed}")
        return ";".join(parts)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str, seed: int | None = None) -> "ChaosPlan":
        """Parse the ``--chaos-spec`` / ``REPRO_CHAOS`` grammar.

        An explicit ``seed`` argument (the ``--chaos-seed`` flag) overrides a
        ``seed=N`` token inside the spec.
        """
        rules: list[ChaosRule] = []
        spec_seed = 0
        for token in spec.split(";"):
            token = token.strip()
            if not token:
                continue
            if token.startswith("seed="):
                spec_seed = _parse_int(token[len("seed="):], token)
                continue
            action, _, selector_text = token.partition(":")
            action = action.strip()
            settings: dict[str, Any] = {}
            if selector_text:
                for selector in selector_text.split(":"):
                    key, eq, value = selector.partition("=")
                    key = key.strip()
                    if not eq:
                        raise ValueError(
                            f"bad chaos selector {selector!r} in rule {token!r}: "
                            "expected key=value"
                        )
                    if key == "rate":
                        settings["rate"] = _parse_float(value, token)
                    elif key == "kind":
                        settings["kind"] = value.strip()
                    elif key == "job":
                        settings["job"] = value.strip()
                    elif key == "task":
                        settings["task"] = value.strip()
                    elif key == "attempt":
                        settings["attempt"] = _parse_int(value, token)
                    elif key == "delay":
                        settings["delay_s"] = _parse_float(value, token)
                    else:
                        raise ValueError(
                            f"unknown chaos selector {key!r} in rule {token!r}; "
                            "known: rate, kind, job, task, attempt, delay"
                        )
            rules.append(ChaosRule(action=action, **settings))
        return cls(rules=tuple(rules), seed=seed if seed is not None else spec_seed)

    @classmethod
    def from_env(cls, environ=None) -> "ChaosPlan | None":
        """The plan described by ``REPRO_CHAOS`` (+ ``REPRO_CHAOS_SEED``),
        or ``None`` when the variable is unset or empty."""
        environ = environ if environ is not None else os.environ
        spec = environ.get(CHAOS_ENV, "").strip()
        if not spec:
            return None
        seed_text = environ.get(CHAOS_SEED_ENV, "").strip()
        seed = _parse_int(seed_text, CHAOS_SEED_ENV) if seed_text else None
        return cls.from_spec(spec, seed=seed)


def _parse_float(text: str, where: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"bad number {text!r} in chaos spec {where!r}") from None


def _parse_int(text: str, where: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ValueError(f"bad integer {text!r} in chaos spec {where!r}") from None


@dataclass
class LegacyFaultInjector:
    """Adapter keeping the historical bare-callable injector working.

    ``(kind, task_id, attempt) -> True`` means "crash this attempt" — the
    only failure mode the old interface could express.  The callable is
    invoked exactly once per attempt, in scheduler dispatch order, so
    stateful injectors (the tests' fail-once closures) behave as before.
    """

    callback: Callable[[str, str, int], bool]
    rules: tuple = field(default=(), init=False)

    def attempt_action(
        self, job_name: str, kind: str, task_id: str, attempt: int
    ) -> ChaosAction | None:
        if self.callback(kind, task_id, attempt):
            return ChaosAction(action="crash")
        return None

    def segment_action(
        self, job_name: str, kind: str, task_id: str, attempt: int
    ) -> None:
        return None


def resolve_chaos(injector) -> "ChaosPlan | LegacyFaultInjector | None":
    """Normalize a runtime's ``fault_injector`` argument.

    Accepts ``None``, a :class:`ChaosPlan` (or anything exposing its
    ``attempt_action`` / ``segment_action`` interface), or the legacy bare
    callable.
    """
    if injector is None:
        return None
    if hasattr(injector, "attempt_action"):
        return injector
    if callable(injector):
        return LegacyFaultInjector(injector)
    raise TypeError(
        f"fault_injector must be callable or a ChaosPlan, got {type(injector).__name__}"
    )
