"""Distributed kNN join algorithms.

* :class:`PGBJ` — the paper's contribution (Voronoi partitioning + grouping).
* :class:`PBJ` — the pruning kernel inside the block framework (no grouping).
* :class:`HBRJ` — the R-tree block-join baseline of Zhang et al.
* :class:`BroadcastJoin` — the naive |R| + N*|S| broadcast strategy.

All produce identical exact results; they differ in running time, computation
selectivity and shuffling cost — the paper's three measurements, exposed on
:class:`JoinOutcome`.
"""

from .base import (
    BlockJoinConfig,
    JoinConfig,
    JoinOutcome,
    KnnJoinAlgorithm,
    PgbjConfig,
)
from .basic import BroadcastJoin
from .closest_pairs import ClosestPairsOutcome, TopKClosestPairs
from .hbrj import HBRJ
from .ijoin import IJoinBlock
from .pbj import PBJ
from .pgbj import PGBJ
from .range_selection import DistributedRangeSelection, RangeSelectionOutcome
from .zorder import ZOrderConfig, ZOrderKnnJoin, recall_against

__all__ = [
    "JoinConfig",
    "PgbjConfig",
    "BlockJoinConfig",
    "JoinOutcome",
    "KnnJoinAlgorithm",
    "PGBJ",
    "PBJ",
    "HBRJ",
    "BroadcastJoin",
    "IJoinBlock",
    "ZOrderKnnJoin",
    "ZOrderConfig",
    "recall_against",
    "DistributedRangeSelection",
    "RangeSelectionOutcome",
    "TopKClosestPairs",
    "ClosestPairsOutcome",
    "make_algorithm",
]


def make_algorithm(name: str, config: JoinConfig) -> KnnJoinAlgorithm:
    """Instantiate an algorithm by report name, wrapping config as needed."""
    name = name.lower()
    if name == "pgbj":
        if not isinstance(config, PgbjConfig):
            raise TypeError("PGBJ requires a PgbjConfig")
        return PGBJ(config)
    if name == "pbj":
        if not isinstance(config, BlockJoinConfig):
            raise TypeError("PBJ requires a BlockJoinConfig")
        return PBJ(config)
    if name == "hbrj":
        if not isinstance(config, BlockJoinConfig):
            raise TypeError("H-BRJ requires a BlockJoinConfig")
        return HBRJ(config)
    if name == "broadcast":
        return BroadcastJoin(config)
    if name == "ijoin":
        if not isinstance(config, BlockJoinConfig):
            raise TypeError("iJoin requires a BlockJoinConfig")
        return IJoinBlock(config)
    raise ValueError(
        f"unknown algorithm {name!r}; available: pgbj, pbj, hbrj, broadcast, ijoin"
    )
