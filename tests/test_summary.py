"""Unit tests for the summary tables T_R / T_S."""

import numpy as np
import pytest

from repro.core.summary import PartitionStat, SummaryTable, build_partial_summary


class TestBuildPartial:
    def test_counts_lower_upper(self):
        pids = np.array([0, 0, 1, 0])
        dists = np.array([2.0, 5.0, 1.0, 3.0])
        table = build_partial_summary(pids, dists, k=0)
        row = table.get(0)
        assert row.count == 3
        assert row.lower == 2.0
        assert row.upper == 5.0
        assert table.get(1).count == 1

    def test_knn_distances_kept_ascending(self):
        pids = np.zeros(5, dtype=int)
        dists = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        table = build_partial_summary(pids, dists, k=3)
        assert table.get(0).knn_distances == (1.0, 2.0, 3.0)

    def test_knn_distances_empty_for_tr(self):
        table = build_partial_summary(np.zeros(3, dtype=int), np.ones(3), k=0)
        assert table.get(0).knn_distances == ()

    def test_fewer_objects_than_k(self):
        table = build_partial_summary(np.zeros(2, dtype=int), np.array([2.0, 1.0]), k=5)
        assert table.get(0).knn_distances == (1.0, 2.0)


class TestMerge:
    def test_merge_two_partials(self):
        left = build_partial_summary(np.array([0, 0]), np.array([1.0, 4.0]), k=2)
        right = build_partial_summary(np.array([0]), np.array([2.0]), k=2)
        left.merge(right)
        row = left.get(0)
        assert row.count == 3
        assert row.lower == 1.0
        assert row.upper == 4.0
        assert row.knn_distances == (1.0, 2.0)

    def test_merge_disjoint_partitions(self):
        left = build_partial_summary(np.array([0]), np.array([1.0]), k=1)
        right = build_partial_summary(np.array([3]), np.array([2.0]), k=1)
        left.merge(right)
        assert left.partition_ids() == [0, 3]

    def test_merge_matches_single_pass(self):
        rng = np.random.default_rng(0)
        pids = rng.integers(0, 5, 200)
        dists = rng.random(200)
        whole = build_partial_summary(pids, dists, k=4)
        merged = SummaryTable(k=4)
        for chunk in range(4):
            lo, hi = chunk * 50, (chunk + 1) * 50
            merged.merge(build_partial_summary(pids[lo:hi], dists[lo:hi], k=4))
        for pid in whole.partition_ids():
            a, b = whole.get(pid), merged.get(pid)
            assert a.count == b.count
            assert a.lower == b.lower
            assert a.upper == b.upper
            assert a.knn_distances == b.knn_distances

    def test_row_merge_rejects_different_partitions(self):
        a = PartitionStat(0, 1, 0.0, 1.0)
        b = PartitionStat(1, 1, 0.0, 1.0)
        with pytest.raises(ValueError):
            a.merged_with(b, k=0)


class TestTableApi:
    def test_contains_and_len(self):
        table = build_partial_summary(np.array([0, 2]), np.array([1.0, 2.0]), k=0)
        assert 0 in table and 2 in table and 1 not in table
        assert len(table) == 2

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            SummaryTable().get(0)

    def test_counts_dense(self):
        table = build_partial_summary(np.array([1, 1, 3]), np.ones(3), k=0)
        assert table.counts(5).tolist() == [0, 2, 0, 1, 0]

    def test_upper_of(self):
        table = build_partial_summary(np.array([0, 0]), np.array([1.0, 9.0]), k=0)
        assert table.upper_of(0) == 9.0

    def test_estimated_bytes_grows_with_knn_list(self):
        small = build_partial_summary(np.zeros(5, dtype=int), np.arange(5.0), k=0)
        big = build_partial_summary(np.zeros(5, dtype=int), np.arange(5.0), k=5)
        assert big.estimated_bytes() > small.estimated_bytes()

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            SummaryTable(k=-1)
