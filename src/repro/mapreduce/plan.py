"""Declarative dataflow plans over the MapReduce runtime.

The paper's joins are multi-job pipelines (PGBJ's Figure 3 chains
partitioning → grouping → kNN join) that the drivers used to hand-sequence
as imperative ``runtime.run(job, splits)`` calls.  This module turns those
pipelines into *plans*, the FlumeJava/Spark move applied to this runtime:

* a :class:`JobGraph` is a DAG of :class:`Stage` nodes.  Each stage owns a
  *builder* — a callable that receives a :class:`StageContext`, performs any
  master-side work (pivot selection, summary merging, grouping), and returns
  the stage's :class:`~repro.mapreduce.job.MapReduceJob` plus its input
  splits (named DFS artifacts or ``chain_splits`` of upstream outputs).
  Edges are data dependencies: a builder may read the
  :class:`~repro.mapreduce.runtime.JobResult` of its declared dependencies
  and nothing else.
* a :class:`PlanScheduler` executes a graph on one
  :class:`~repro.mapreduce.runtime.LocalRuntime`, topologically.  Stages
  whose dependencies are satisfied run **concurrently** (each on its own
  scheduler thread, sharing the runtime's executor and shuffle store);
  ``concurrent=False`` falls back to strict declaration order.  Either way
  every stage's result is a pure function of its inputs, so outputs,
  counters and shuffle accounting are bit-identical between the two modes —
  the scheduler only moves wall-clock.
* a :class:`PlanCache` memoizes *content-keyed* stages: a stage that
  declares a ``key`` (a hashable fingerprint of everything its job execution
  depends on) is served from the cache when an identical stage already ran —
  how a sweep reuses an unchanged plan prefix, e.g. one PGBJ partitioning
  job shared across a whole k-sweep.  Builders still run on a hit (they
  produce master-side artifacts downstream stages need); only the job
  execution is skipped, and the cached :class:`JobResult` — stats, counters
  and all — stands in bit-for-bit.

Aggregation stays deterministic: :class:`PlanRun` exposes stage executions
in *declaration* order regardless of how execution interleaved, so outcome
assembly (counters merged job by job, stats listed in submission order) is
identical to what the imperative drivers produced.
"""

from __future__ import annotations

import hashlib
import os
import re
import threading
import time
from collections.abc import Callable, Hashable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .job import MapReduceJob
from .runtime import JobResult, LocalRuntime
from .shuffle import iter_segment, write_segment
from .types import InputSplit

__all__ = [
    "JobGraph",
    "Stage",
    "StageContext",
    "StageExecution",
    "FusedOutput",
    "PlanRun",
    "PlanScheduler",
    "PlanCache",
    "PlanError",
    "StageCheckpointStore",
    "dump_job_result",
    "load_job_result",
]

#: a stage builder: master-side work + the stage's job and splits (or
#: ``None`` for a master-only stage that runs no MapReduce job)
StageBuilder = Callable[
    ["StageContext"], "tuple[MapReduceJob, Sequence[InputSplit]] | None"
]

#: scheduler threads are cheap (they block on runtime.run); this only caps
#: pathological graphs
_MAX_STAGE_WORKERS = 16


class PlanError(RuntimeError):
    """A plan was malformed or used outside its contract."""


@dataclass(frozen=True)
class Stage:
    """One node of a :class:`JobGraph`.

    ``name`` is the stable stage name (e.g. ``"pgbj/partition"``) used for
    progress, stats keying and debugging; ``deps`` are the stages whose
    results the builder may read; ``key`` (optional) is the content
    fingerprint that makes the stage's job execution cacheable — it must
    determine the built job and splits completely, or two sweeps that should
    differ would share a result.
    """

    name: str
    build: StageBuilder
    deps: tuple["Stage", ...] = ()
    key: Hashable | None = None

    def __repr__(self) -> str:  # the builder closure is noise
        return f"Stage({self.name!r}, deps={[d.name for d in self.deps]})"


class JobGraph:
    """A DAG of stages plus the resources (DFS, …) their builders close over.

    Stages are appended with :meth:`stage`; dependencies must already belong
    to the graph, which makes declaration order a valid topological order by
    construction (and exactly the order the imperative drivers ran).
    Graphs are single-execution: builders may write shared driver state, so
    build a fresh graph per run (the plan *cache* is what carries work
    across runs).
    """

    def __init__(self, name: str = "plan") -> None:
        self.name = name
        self.stages: list[Stage] = []
        self._members: set[int] = set()
        self.resources: list[Any] = []
        #: original sub-graph stage id -> renamed twin (populated by fuse)
        self._alias: dict[int, Stage] = {}

    def stage(
        self,
        name: str,
        build: StageBuilder,
        deps: Iterable[Stage] = (),
        key: Hashable | None = None,
    ) -> Stage:
        """Append a stage; returns the node for downstream ``deps`` lists."""
        deps = tuple(deps)
        for dep in deps:
            if id(dep) not in self._members:
                raise PlanError(
                    f"stage {name!r} depends on {dep.name!r}, which is not "
                    f"part of graph {self.name!r} (declare dependencies first)"
                )
        if any(existing.name == name for existing in self.stages):
            raise PlanError(f"graph {self.name!r} already has a stage named {name!r}")
        node = Stage(name=name, build=build, deps=deps, key=key)
        self.stages.append(node)
        self._members.add(id(node))
        return node

    def resource(self, resource: Any) -> Any:
        """Attach a context manager the plan's executor must hold open while
        the graph runs (a DFS holding chained intermediates, typically).
        ``None`` is accepted and ignored, matching ``make_chain_dfs``."""
        if resource is not None:
            self.resources.append(resource)
        return resource

    @classmethod
    def fuse(cls, graphs: Sequence["JobGraph"], name: str = "fused") -> "JobGraph":
        """One graph holding every stage of ``graphs`` (stages are shared,
        not copied, so handles into the sub-graphs keep working).

        Stages of different sub-graphs have no edges between each other, so
        a concurrent scheduler overlaps whole pipelines — the multi-join
        scenario.  Colliding stage names are uniquified with a sub-graph
        prefix; assembly code should therefore capture names at plan-build
        time rather than re-reading ``stage.name`` after fusing.
        """
        fused = cls(name)
        seen: set[str] = set()
        for position, graph in enumerate(graphs):
            for node in graph.stages:
                label = node.name if node.name not in seen else f"{position}:{node.name}"
                seen.add(label)
                renamed = Stage(
                    name=label, build=node.build, deps=node.deps, key=node.key
                )
                # keep sub-graph handles valid: execution is keyed by the
                # *original* node object, which the renamed node stands for
                fused.stages.append(renamed)
                fused._members.add(id(node))
                fused._members.add(id(renamed))
                fused._alias.setdefault(id(node), renamed)
            fused.resources.extend(graph.resources)
        return fused


@dataclass(frozen=True)
class FusedOutput:
    """A builder-returned *splits* marker requesting plan-level map fusion.

    A stage whose mapper is the identity (the shared candidate-merge stages)
    may return ``(job, FusedOutput(source))`` instead of materialising its
    input through ``chain_splits``: the scheduler then feeds the ``source``
    stage's output pairs straight into the job's shuffle via
    :meth:`~repro.mapreduce.runtime.LocalRuntime.run_premapped`, skipping the
    identity map phase (and, for DFS-chained plans, a full write+read
    round-trip of the intermediate).  ``source`` must be one of the stage's
    declared dependencies.  Because reduce input ordering is defined by the
    producer's global emission order — which fusion preserves — the fused
    stage's results, counters and shuffle accounting are bit-identical to the
    unfused run.
    """

    source: Stage


@dataclass
class StageExecution:
    """What one stage produced: its job result plus master-side bookkeeping.

    ``started_s``/``finished_s`` are ``perf_counter`` stamps around the
    whole stage (builder + job), the planner's observability into where a
    plan's wall-clock went and how stages overlapped.
    """

    stage: Stage
    result: JobResult | None = None
    phases: dict[str, float] = field(default_factory=dict)
    from_cache: bool = False
    from_checkpoint: bool = False
    fused: bool = False
    started_s: float = 0.0
    finished_s: float = 0.0

    @property
    def wall_seconds(self) -> float:
        """Wall-clock the stage occupied (builder + job execution)."""
        return self.finished_s - self.started_s


class StageContext:
    """The builder-facing view of a running plan.

    Builders read dependency results through :meth:`result_of` (declared
    dependencies only — the scheduler guarantees those are complete; an
    undeclared read would race under concurrent execution, so it is an
    error), and record master-phase timings with :meth:`timed` /
    :meth:`add_phase` (stage-scoped, so fused plans never mix phases of
    different joins).
    """

    def __init__(self, run: "PlanRun", execution: StageExecution) -> None:
        self._run = run
        self._execution = execution

    def result_of(self, stage: Stage) -> JobResult:
        """The completed :class:`JobResult` of a declared dependency."""
        if all(dep is not stage for dep in self._execution.stage.deps):
            raise PlanError(
                f"stage {self._execution.stage.name!r} read "
                f"{stage.name!r} without declaring it as a dependency"
            )
        result = self._run.execution_of(stage).result
        if result is None:
            raise PlanError(f"stage {stage.name!r} ran no MapReduce job")
        return result

    def add_phase(self, name: str, seconds: float) -> None:
        """Record one master-phase duration under this stage."""
        self._execution.phases[name] = self._execution.phases.get(name, 0.0) + seconds

    @contextmanager
    def timed(self, name: str):
        """Context manager timing a master phase (``with ctx.timed("x"):``)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_phase(name, time.perf_counter() - started)


class PlanRun:
    """A completed (or in-flight) plan execution.

    ``executions`` is in stage *declaration* order — the deterministic
    aggregation order — regardless of how the scheduler interleaved the
    actual work.  Thread-safe: scheduler workers fill it concurrently.
    """

    def __init__(self, graph: JobGraph) -> None:
        self.graph = graph
        self._lock = threading.Lock()
        self._executions: dict[int, StageExecution] = {}
        for node in graph.stages:
            execution = StageExecution(stage=node)
            self._executions[id(node)] = execution
            original = graph._alias
            # fused graphs: the original sub-graph node resolves to the same
            # execution as its renamed twin
            for alias_id, renamed in original.items():
                if renamed is node:
                    self._executions[alias_id] = execution

    # -- builder/assembly access ------------------------------------------------

    def execution_of(self, stage: Stage) -> StageExecution:
        try:
            return self._executions[id(stage)]
        except KeyError:
            raise PlanError(f"stage {stage.name!r} is not part of this plan") from None

    def result_of(self, stage: Stage) -> JobResult:
        """The stage's :class:`JobResult` (raises for master-only stages)."""
        result = self.execution_of(stage).result
        if result is None:
            raise PlanError(f"stage {stage.name!r} produced no job result")
        return result

    @property
    def executions(self) -> list[StageExecution]:
        """All stage executions, in declaration order."""
        return [self._executions[id(node)] for node in self.graph.stages]

    def phases_of(self, stages: Iterable[Stage]) -> dict[str, float]:
        """Master phases of the given stages, merged in the given order."""
        merged: dict[str, float] = {}
        for stage in stages:
            for name, seconds in self.execution_of(stage).phases.items():
                merged[name] = merged.get(name, 0.0) + seconds
        return merged

    def cached_stage_names(self) -> list[str]:
        """Names of stages served from the plan cache, declaration order."""
        return [e.stage.name for e in self.executions if e.from_cache]

    def checkpointed_stage_names(self) -> list[str]:
        """Names of stages restored from checkpoints, declaration order."""
        return [e.stage.name for e in self.executions if e.from_checkpoint]

    def fused_stage_names(self) -> list[str]:
        """Names of stages executed premapped (map fusion), declaration order."""
        return [e.stage.name for e in self.executions if e.fused]


#: key of the meta entry, first pair in every serialized-result segment file
_RESULT_META_KEY = "__checkpoint__"


def dump_job_result(
    path: Path, result: JobResult, meta: dict[str, Any]
) -> Path | None:
    """Best-effort write of a :class:`JobResult` in the segment wire format.

    The file starts with a meta entry (``meta`` merged with the result's job
    name, reducer count, side outputs, counters and stats) followed by the
    output pairs, each tagged with ``reducer + 1`` so ``outputs_by_reducer``
    restores exactly.  Written to a temp name and atomically renamed — a kill
    mid-save never leaves a truncated file.  Returns the path, or ``None``
    when the result cannot be persisted (unpicklable values, disk errors).
    """
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        full_meta = {
            **meta,
            "job_name": result.job_name,
            "num_reducers": (
                len(result.outputs_by_reducer)
                if result.outputs_by_reducer is not None
                else None
            ),
            "side_outputs": result.side_outputs,
            "counters": result.counters,
            "stats": result.stats,
        }
        entries: list[tuple] = [(0, 0, _RESULT_META_KEY, full_meta, 0, 0)]
        seq = 1
        if result.outputs_by_reducer is not None:
            for reducer, pairs in enumerate(result.outputs_by_reducer):
                for pair_key, value in pairs:
                    entries.append((reducer + 1, seq, pair_key, value, 0, 0))
                    seq += 1
        else:
            for pair_key, value in result.outputs:
                entries.append((1, seq, pair_key, value, 0, 0))
                seq += 1
        tmp = path.with_name(path.name + ".tmp")
        write_segment(tmp, 0, entries)
        os.replace(tmp, path)
        return path
    except Exception:
        return None


def load_job_result(path: Path, expected: dict[str, Any]) -> JobResult | None:
    """Read a :func:`dump_job_result` file back, or ``None`` on any defect.

    ``expected`` items must all match the stored meta entry — the caller's
    identity check (stage name, content-key repr) that keeps a stale or
    foreign file from standing in for a different computation.  Corruption
    (CRC mismatch, truncation, unpicklable entries, schema drift) also
    returns ``None``: the caller just recomputes.
    """
    try:
        entries = iter_segment(path)
        first = next(entries, None)
        if first is None:
            return None
        _, _, key, meta = first
        if key != _RESULT_META_KEY or not isinstance(meta, dict):
            return None
        for check, value in expected.items():
            if meta.get(check) != value:
                return None
        num_reducers = meta["num_reducers"]
        by_reducer: list[list[tuple[Any, Any]]] | None = (
            [[] for _ in range(num_reducers)] if num_reducers is not None else None
        )
        outputs: list[tuple[Any, Any]] = []
        for task, _, pair_key, value in entries:
            if by_reducer is not None:
                by_reducer[task - 1].append((pair_key, value))
            else:
                outputs.append((pair_key, value))
        if by_reducer is not None:
            outputs = [pair for per_reducer in by_reducer for pair in per_reducer]
        return JobResult(
            job_name=meta["job_name"],
            outputs=outputs,
            outputs_by_reducer=by_reducer,
            side_outputs=meta["side_outputs"],
            counters=meta["counters"],
            stats=meta["stats"],
        )
    except Exception:
        return None


class PlanCache:
    """Content-keyed memo of stage job executions, shared across plans.

    A sweep harness holds one cache and hands it to every run (via
    ``JoinConfig.plan_cache``): stages whose content key already executed are
    served their previous :class:`JobResult` verbatim — results, counters,
    stats and accounting are the original object, so a cached run is
    bit-identical to a cold one.

    Thread-safe, with **in-flight coalescing**: when several concurrently
    scheduled stages share one key (a fused sweep whose points all start
    from the same prefix), the first becomes the producer and the rest block
    until its result lands — the prefix executes exactly once, not once per
    racer.  A producer that fails clears the in-flight reservation *before*
    waking waiters, so the next waiter (or any later caller — including one
    arriving after a second failure) re-enters the loop, finds no producer,
    and takes over: an injected fault never wedges the sweep.  Entries live
    until :meth:`clear` (results are plain values — nothing to close).

    With a ``directory`` the cache is additionally **persistent**: every
    produced result is serialized in the segment wire format (one file per
    key, named by the SHA-1 of the key's ``repr`` — keys must therefore have
    process-stable reprs, which the tuple-of-str/int stage keys do) and a
    miss consults the directory before computing.  Writes are atomic
    (temp + rename) and a corrupt, truncated or foreign file is treated as a
    miss, so k-sweeps, bench reruns and service restarts reuse partitioning
    work across *processes*, not just within one.
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self._lock = threading.Lock()
        self._entries: dict[Hashable, JobResult] = {}
        self._inflight: dict[Hashable, threading.Event] = {}
        self.directory = Path(directory) if directory is not None else None
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_writes = 0

    def path_for(self, key: Hashable) -> Path:
        """The segment file a persistent entry for ``key`` lives in."""
        if self.directory is None:
            raise ValueError("PlanCache has no directory")
        digest = hashlib.sha1(repr(key).encode()).hexdigest()
        return self.directory / f"{digest}.plan.seg"

    def _load_disk(self, key: Hashable) -> JobResult | None:
        if self.directory is None:
            return None
        return load_job_result(self.path_for(key), {"key_repr": repr(key)})

    def _store_disk(self, key: Hashable, result: JobResult) -> None:
        if self.directory is None:
            return
        if dump_job_result(self.path_for(key), result, {"key_repr": repr(key)}):
            with self._lock:
                self.disk_writes += 1

    def compute(self, key: Hashable, produce: Callable[[], JobResult]):
        """The entry for ``key``, producing it at most once across threads.

        Returns ``(result, fresh)`` — ``fresh=False`` means the result was
        served from the cache (a memory or disk hit), possibly after waiting
        for a concurrent producer.
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self.hits += 1
                    return self._entries[key], False
                event = self._inflight.get(key)
                if event is None:
                    self._inflight[key] = threading.Event()
                    break  # this thread produces (or loads from disk)
            event.wait()  # a concurrent producer is running this key
        try:
            loaded = self._load_disk(key)
        except BaseException:
            with self._lock:
                self._inflight.pop(key).set()
            raise
        if loaded is not None:
            with self._lock:
                self._entries[key] = loaded
                self.disk_hits += 1
                self._inflight.pop(key).set()
            return loaded, False
        with self._lock:
            self.misses += 1
        try:
            result = produce()
        except BaseException:
            # clear the reservation first, then wake the waiters: the next
            # one retries the loop, finds no in-flight producer, and produces
            # itself — repeated failures just repeat this handoff, they never
            # leave the key locked
            with self._lock:
                self._inflight.pop(key).set()
            raise
        self._store_disk(key, result)
        with self._lock:
            self._entries[key] = result
            self._inflight.pop(key).set()
        return result, True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def disk_entries(self) -> int:
        """Number of persisted result files currently in the directory."""
        if self.directory is None or not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.plan.seg"))

    def stats(self) -> dict[str, int]:
        """``{"entries", "hits", "misses"}`` — stamped into bench records.

        Persistent caches additionally report ``disk_hits`` (misses served
        from the cache directory) and ``disk_writes``.
        """
        base = {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }
        if self.directory is not None:
            base["disk_hits"] = self.disk_hits
            base["disk_writes"] = self.disk_writes
        return base


class StageCheckpointStore:
    """Persists completed stage results so a killed plan run can resume.

    One file per stage, written in the shuffle's segment wire format (so
    checkpoints get the same per-entry CRC32 integrity protection spilled
    shuffle data has): a meta entry — stage name, content-key repr, job
    name, counters, stats, side outputs — followed by the job's output
    pairs, tagged with their reducer so ``outputs_by_reducer`` restores
    exactly.  Files are written to a temp name and atomically renamed, so a
    kill mid-save never leaves a truncated checkpoint; a checkpoint that is
    corrupt, unreadable, or belongs to a different stage/key is silently
    ignored and the stage re-runs.  The restored :class:`JobResult` is
    bit-identical to the original — results, counters, stats, accounting —
    so resumed plan runs fingerprint-match uninterrupted ones.

    Checkpoints are keyed by stage name + content key only: a directory
    must belong to one plan identity (the ``--checkpoint-dir`` contract).
    """

    #: key of the meta entry, first in every checkpoint file
    META_KEY = _RESULT_META_KEY

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)

    def path_for(self, stage: Stage) -> Path:
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", stage.name)
        digest = hashlib.sha1(
            f"{stage.name}|{repr(stage.key)}".encode()
        ).hexdigest()[:12]
        return self.directory / f"{safe}-{digest}.ckpt.seg"

    def load(self, stage: Stage) -> JobResult | None:
        """The stage's checkpointed result, or ``None`` when there is none
        (missing, corrupt, or written for a different stage identity)."""
        return load_job_result(
            self.path_for(stage),
            {"stage": stage.name, "key_repr": repr(stage.key)},
        )

    def save(self, stage: Stage, result: JobResult) -> Path | None:
        """Best-effort write of one stage's result; returns the path, or
        ``None`` when the result cannot be persisted (unpicklable outputs,
        disk errors) — resume then simply re-runs the stage."""
        return dump_job_result(
            self.path_for(stage),
            result,
            {"stage": stage.name, "key_repr": repr(stage.key)},
        )


class PlanScheduler:
    """Executes a :class:`JobGraph` on one runtime, concurrently when it can.

    ``concurrent=True`` (the default) runs every dependency-satisfied stage
    at once, each on a scheduler thread sharing the runtime's executor and
    shuffle store — independent stages of a fused plan overlap, chains
    degrade gracefully to sequential.  ``concurrent=False`` is the escape
    hatch (CLI ``--no-plan-concurrency``): strict declaration order, exactly
    the imperative drivers' schedule.  Both modes produce bit-identical
    results, counters and shuffle accounting; tests enforce it.

    ``checkpoint_dir`` (CLI ``--checkpoint-dir``) turns on stage-level
    checkpointing via a :class:`StageCheckpointStore`: every completed
    stage's result is persisted, and a re-run of the same plan restores
    completed stages instead of re-executing their jobs — builders still
    run (they produce master-side artifacts), only the MapReduce work is
    skipped.  A killed run therefore resumes from its last finished stage,
    with results bit-identical to an uninterrupted run.
    """

    def __init__(
        self,
        runtime: LocalRuntime,
        cache: PlanCache | None = None,
        concurrent: bool = True,
        max_stage_workers: int | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
    ) -> None:
        self.runtime = runtime
        self.cache = cache
        self.concurrent = concurrent
        if max_stage_workers is not None and max_stage_workers < 1:
            raise ValueError("max_stage_workers must be >= 1")
        self.max_stage_workers = max_stage_workers
        self.checkpoints = (
            StageCheckpointStore(checkpoint_dir) if checkpoint_dir else None
        )

    def execute(self, graph: JobGraph) -> PlanRun:
        """Run every stage of the graph; returns the completed plan run."""
        run = PlanRun(graph)
        if not graph.stages:
            return run
        if not self.concurrent or len(graph.stages) == 1:
            for node in graph.stages:  # declaration order is topological
                self._run_stage(run, node)
            return run
        self._execute_concurrent(run, graph)
        return run

    # -- internals --------------------------------------------------------------

    def _execute_concurrent(self, run: PlanRun, graph: JobGraph) -> None:
        remaining = {id(node): len(node.deps) for node in graph.stages}
        dependents: dict[int, list[Stage]] = {id(node): [] for node in graph.stages}
        for node in graph.stages:
            for dep in node.deps:
                dependents[id(run.execution_of(dep).stage)].append(node)
        ready = [node for node in graph.stages if remaining[id(node)] == 0]
        workers = self.max_stage_workers or min(len(graph.stages), _MAX_STAGE_WORKERS)
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=f"plan-{graph.name}"
        ) as pool:
            futures = {
                pool.submit(self._run_stage, run, node): node for node in ready
            }
            failure: BaseException | None = None
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    node = futures.pop(future)
                    error = future.exception()
                    if error is not None:
                        failure = failure or error
                        continue
                    if failure is not None:
                        continue  # finish in-flight stages, submit nothing new
                    for dependent in dependents[id(node)]:
                        remaining[id(dependent)] -= 1
                        if remaining[id(dependent)] == 0:
                            futures[pool.submit(self._run_stage, run, dependent)] = (
                                dependent
                            )
            if failure is not None:
                raise failure

    def _run_stage(self, run: PlanRun, node: Stage) -> None:
        execution = run.execution_of(node)
        execution.started_s = time.perf_counter()
        built = node.build(StageContext(run, execution))
        if built is not None:
            job, splits = built
            restored = (
                self.checkpoints.load(node) if self.checkpoints is not None else None
            )
            if restored is not None:
                execution.result = restored
                execution.from_checkpoint = True
                execution.finished_s = time.perf_counter()
                return
            produce = self._producer(run, node, execution, job, splits)
            if self.cache is not None and node.key is not None:
                # coalesced: concurrent stages sharing this key (a fused
                # sweep's common prefix) execute the job exactly once
                result, fresh = self.cache.compute(node.key, produce)
                execution.from_cache = not fresh
            else:
                result = produce()
            execution.result = result
            if self.checkpoints is not None:
                # cached results are saved too: resume must not depend on
                # the (in-process) plan cache being warm
                self.checkpoints.save(node, result)
        execution.finished_s = time.perf_counter()

    def _producer(
        self,
        run: PlanRun,
        node: Stage,
        execution: StageExecution,
        job: MapReduceJob,
        splits: Sequence[InputSplit] | FusedOutput,
    ) -> Callable[[], JobResult]:
        """The thunk that executes the stage's job — plain or premapped."""
        if not isinstance(splits, FusedOutput):
            return lambda: self.runtime.run(job, splits)
        source = splits.source
        if all(dep is not source for dep in node.deps):
            raise PlanError(
                f"stage {node.name!r} fuses over {source.name!r} without "
                "declaring it as a dependency"
            )
        pairs = run.result_of(source).outputs
        execution.fused = True
        return lambda: self.runtime.run_premapped(job, pairs)
