"""Tests for ``repro-lint`` (:mod:`repro.analysis`).

Each rule gets a positive fixture, a suppression fixture and at least one
false-positive guard built from the repository's sanctioned idioms.  The
integration tests at the bottom assert the shipped tree is clean and that
a seeded violation fails the CLI with its code and location — the CI
contract.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_source, get_rule
from repro.analysis.cli import main
from repro.analysis.engine import PARSE_ERROR_CODE, select_rules
from repro.analysis.registry import available_rules, resolve_codes

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(source: str) -> list[str]:
    return [f.code for f in analyze_source(textwrap.dedent(source))]


class TestDeterminismRules:
    def test_det001_unseeded_default_rng_in_mapper(self):
        src = """
            import numpy as np

            class M(Mapper):
                def map(self, ctx, key, value):
                    rng = np.random.default_rng()
                    yield key, rng.random()
        """
        assert "DET001" in codes(src)

    def test_det001_seeded_rng_passes(self):
        src = """
            import numpy as np

            class M(Mapper):
                def map(self, ctx, key, value):
                    rng = np.random.default_rng(7)
                    yield key, rng.random()
        """
        assert "DET001" not in codes(src)

    def test_det001_unseeded_rng_outside_task_code_passes(self):
        src = """
            import numpy as np

            def build_dataset():
                return np.random.default_rng().random(8)
        """
        assert "DET001" not in codes(src)

    def test_det001_suppressed(self):
        src = """
            import numpy as np

            class M(Mapper):
                def map(self, ctx, key, value):
                    rng = np.random.default_rng()  # repro-lint: disable=DET001
                    yield key, rng.random()
        """
        assert "DET001" not in codes(src)

    def test_det002_wall_clock_in_reducer(self):
        src = """
            import time

            class R(Reducer):
                def reduce(self, ctx, key, values):
                    yield key, time.time()
        """
        assert "DET002" in codes(src)

    def test_det002_master_side_timing_passes(self):
        src = """
            import time

            def run_benchmark(fn):
                start = time.perf_counter()
                fn()
                return time.perf_counter() - start
        """
        assert "DET002" not in codes(src)

    def test_det003_set_iteration_in_mapper(self):
        src = """
            class M(Mapper):
                def map(self, ctx, key, value):
                    for item in {1, 2, 3}:
                        yield key, item
        """
        assert "DET003" in codes(src)

    def test_det003_sorted_set_passes(self):
        src = """
            class M(Mapper):
                def map(self, ctx, key, value):
                    for item in sorted({1, 2, 3}):
                        yield key, item
        """
        assert "DET003" not in codes(src)

    def test_det003_dict_iteration_passes(self):
        # CPython dicts are insertion-ordered and the runtime guarantees
        # deterministic arrival order, so dict iteration is sanctioned.
        src = """
            class R(Reducer):
                def reduce(self, ctx, key, values):
                    best = {}
                    for value in values:
                        best[value] = key
                    for item in best:
                        yield key, item
        """
        assert "DET003" not in codes(src)

    def test_det004_builtin_hash_in_partitioner(self):
        src = """
            class P(Partitioner):
                def partition(self, key, num_reducers):
                    return hash(key) % num_reducers
        """
        assert "DET004" in codes(src)

    def test_det004_id_outside_task_code_passes(self):
        src = """
            def dedupe(nodes):
                return {id(node): node for node in nodes}
        """
        assert "DET004" not in codes(src)


class TestDistributionRules:
    def test_pkl001_lambda_factory(self):
        src = """
            job = MapReduceJob("wordcount", lambda: M())
        """
        assert "PKL001" in codes(src)

    def test_pkl001_module_level_class_passes(self):
        src = """
            class M(Mapper):
                def map(self, ctx, key, value):
                    yield key, value

            job = MapReduceJob("wordcount", M)
        """
        assert "PKL001" not in codes(src)

    def test_pkl001_nested_definition_factory(self):
        src = """
            def build_job():
                def make_mapper():
                    return M()
                return MapReduceJob("wordcount", make_mapper)
        """
        assert "PKL001" in codes(src)

    def test_pkl001_lambda_in_cache(self):
        src = """
            job = MapReduceJob("j", M, cache={"fn": lambda x: x})
        """
        assert "PKL001" in codes(src)

    def test_pkl002_nested_mapper_class(self):
        src = """
            def build():
                class M(Mapper):
                    def map(self, ctx, key, value):
                        yield key, value
                return M
        """
        assert "PKL002" in codes(src)

    def test_pkl002_module_level_passes(self):
        src = """
            class M(Mapper):
                def map(self, ctx, key, value):
                    yield key, value
        """
        assert "PKL002" not in codes(src)

    def test_pkl003_mutable_class_default(self):
        src = """
            class M(Mapper):
                seen = []

                def map(self, ctx, key, value):
                    self.seen.append(key)
                    yield key, value
        """
        assert "PKL003" in codes(src)

    def test_pkl003_immutable_default_passes(self):
        src = """
            class M(Mapper):
                block_size = 512

                def map(self, ctx, key, value):
                    yield key, value
        """
        assert "PKL003" not in codes(src)

    def test_pkl003_non_task_class_passes(self):
        src = """
            class Registry:
                entries = {}
        """
        assert "PKL003" not in codes(src)


class TestResourceRules:
    def test_res001_unclosed_open(self):
        src = """
            def read_segment(path):
                handle = open(path, "rb")
                return handle.read()
        """
        assert "RES001" in codes(src)

    def test_res001_with_block_passes(self):
        src = """
            def read_segment(path):
                with open(path, "rb") as handle:
                    return handle.read()
        """
        assert "RES001" not in codes(src)

    def test_res001_exit_stack_passes(self):
        src = """
            def open_all(stack, paths):
                return [stack.enter_context(open(p, "rb")) for p in paths]
        """
        assert "RES001" not in codes(src)

    def test_res001_explicit_close_passes(self):
        src = """
            def read_segment(path):
                handle = open(path, "rb")
                data = handle.read()
                handle.close()
                return data
        """
        assert "RES001" not in codes(src)

    def test_res002_unclosed_runtime(self):
        src = """
            def run(job, splits):
                result = LocalRuntime().run(job, splits)
                return result
        """
        assert "RES002" in codes(src)

    def test_res002_context_manager_passes(self):
        src = """
            def run(job, splits):
                with LocalRuntime() as runtime:
                    return runtime.run(job, splits)
        """
        assert "RES002" not in codes(src)

    def test_res002_ownership_transfer_passes(self):
        # joins/base.py make_runtime hands the runtime to the caller.
        src = """
            def make_runtime(config):
                return LocalRuntime(num_reducers=config.num_reducers)
        """
        assert "RES002" not in codes(src)

    def test_res002_pooled_attribute_with_close_protocol_passes(self):
        # the pooled engines' swap-then-shutdown pattern: the class owns
        # the pool's lifecycle through its own close().
        src = """
            from concurrent.futures import ThreadPoolExecutor

            class Engine:
                def __init__(self):
                    self._pool = ThreadPoolExecutor(max_workers=4)

                def close(self):
                    pool, self._pool = self._pool, None
                    pool.shutdown(wait=True)
        """
        assert "RES002" not in codes(src)


class TestAccountingRule:
    def test_acc001_set_emission(self):
        src = """
            class M(Mapper):
                def map(self, ctx, key, value):
                    yield key, {value}
        """
        assert "ACC001" in codes(src)

    def test_acc001_sorted_list_passes(self):
        src = """
            class M(Mapper):
                def map(self, ctx, key, value):
                    yield key, sorted(value)
        """
        assert "ACC001" not in codes(src)


class TestSuppressions:
    def test_file_level_suppression(self):
        src = """
            # repro-lint: disable-file=DET004
            class P(Partitioner):
                def partition(self, key, num_reducers):
                    return hash(key) % num_reducers
        """
        assert "DET004" not in codes(src)

    def test_line_suppression_only_masks_that_code(self):
        src = """
            import time

            class R(Reducer):
                def reduce(self, ctx, key, values):
                    yield key, time.time()  # repro-lint: disable=DET004
        """
        assert "DET002" in codes(src)

    def test_disable_all(self):
        src = """
            class M(Mapper):
                def map(self, ctx, key, value):
                    yield key, {value}  # repro-lint: disable=all
        """
        assert codes(src) == []


class TestEngineAndRegistry:
    def test_syntax_error_becomes_e001(self):
        findings = analyze_source("def broken(:\n")
        assert [f.code for f in findings] == [PARSE_ERROR_CODE]

    def test_rule_codes_are_stable(self):
        assert set(available_rules()) == {
            "DET001", "DET002", "DET003", "DET004",
            "PKL001", "PKL002", "PKL003",
            "RES001", "RES002", "ACC001",
        }

    def test_get_rule_case_insensitive(self):
        assert get_rule("det001").code == "DET001"

    def test_get_rule_unknown_lists_available(self):
        with pytest.raises(ValueError, match="available"):
            get_rule("NOPE999")

    def test_select_and_ignore(self):
        active = select_rules(select=["DET001", "RES002"], ignore=["res002"])
        assert [spec.code for spec in active] == ["DET001"]

    def test_resolve_codes_rejects_typos(self):
        with pytest.raises(ValueError):
            resolve_codes("DET001,DET999")

    def test_findings_sorted_and_deduplicated(self):
        src = """
            import time

            class R(Reducer):
                def reduce(self, ctx, key, values):
                    yield key, time.time()
                    for item in {1, 2}:
                        yield key, item
        """
        findings = analyze_source(textwrap.dedent(src))
        assert findings == sorted(findings)
        assert len(findings) == len(set(findings))


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main([str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_one_with_code_and_location(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(
            "import numpy as np\n"
            "class M(Mapper):\n"
            "    def map(self, ctx, key, value):\n"
            "        yield key, np.random.default_rng().random()\n"
        )
        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert f"{target}:4" in out

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(
            "class P(Partitioner):\n"
            "    def partition(self, key, n):\n"
            "        return hash(key) % n\n"
        )
        assert main(["--format", "json", str(target)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert "DET004" in payload["rules"]
        assert payload["findings"][0]["code"] == "DET004"
        assert payload["findings"][0]["line"] == 3

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in available_rules():
            assert code in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["--select", "ZZZ001", str(target)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "error" in capsys.readouterr().err

    def test_select_filters_rules(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(
            "class P(Partitioner):\n"
            "    def partition(self, key, n):\n"
            "        return hash(key) % n\n"
        )
        assert main(["--select", "RES001", str(target)]) == 0


class TestShippedTreeIsClean:
    def test_src_repro_is_clean(self, capsys):
        assert main([str(REPO_ROOT / "src" / "repro")]) == 0

    def test_benchmarks_and_examples_are_clean(self, capsys):
        assert main([str(REPO_ROOT / "benchmarks"), str(REPO_ROOT / "examples")]) == 0

    def test_seeded_violation_fails_the_tree(self, tmp_path, capsys):
        # the acceptance check: dropping one unseeded RNG into a Mapper
        # must flip the whole run to exit 1 and name the rule and line.
        bad = tmp_path / "planted.py"
        bad.write_text(
            "import numpy as np\n"
            "class PlantedMapper(Mapper):\n"
            "    def map(self, ctx, key, value):\n"
            "        yield key, np.random.default_rng().random()\n"
        )
        assert main([str(REPO_ROOT / "src" / "repro"), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "planted.py:4" in out
