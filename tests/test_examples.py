"""Smoke tests: every example script runs to completion (scaled down).

The examples carry their own assertions (exactness, outlier recall,
classification accuracy); running them is itself a meaningful integration
test.  They are executed in-process with a patched ``__name__`` guard.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} should print a report"
