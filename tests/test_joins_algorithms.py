"""Per-algorithm unit tests: PGBJ, PBJ, H-BRJ, broadcast."""

import numpy as np
import pytest

from repro import (
    HBRJ,
    PBJ,
    PGBJ,
    BlockJoinConfig,
    BroadcastJoin,
    JoinConfig,
    PgbjConfig,
    make_algorithm,
)
from tests.conftest import ground_truth


class TestPgbj:
    def test_exact_on_uniform(self, small_uniform):
        outcome = PGBJ(
            PgbjConfig(k=5, num_reducers=4, num_pivots=10, split_size=64)
        ).run(small_uniform, small_uniform)
        truth = ground_truth(small_uniform, small_uniform, 5)
        assert outcome.result.same_distances_as(truth)
        outcome.result.validate(small_uniform.ids, len(small_uniform))

    def test_exact_on_integer_data_with_ties(self, small_forest):
        outcome = PGBJ(
            PgbjConfig(k=4, num_reducers=4, num_pivots=12, split_size=64)
        ).run(small_forest, small_forest)
        truth = ground_truth(small_forest, small_forest, 4)
        assert outcome.result.same_distances_as(truth)

    def test_non_self_join(self, rng):
        from repro.core import Dataset

        r = Dataset(rng.random((60, 3)), name="r")
        s = Dataset(rng.random((90, 3)), ids=np.arange(500, 590), name="s")
        outcome = PGBJ(PgbjConfig(k=3, num_reducers=3, num_pivots=8)).run(r, s)
        assert outcome.result.same_distances_as(ground_truth(r, s, 3))

    @pytest.mark.parametrize("pivot_selection", ["random", "farthest", "kmeans"])
    def test_all_pivot_strategies_exact(self, small_uniform, pivot_selection):
        config = PgbjConfig(
            k=3, num_reducers=3, num_pivots=8, pivot_selection=pivot_selection
        )
        outcome = PGBJ(config).run(small_uniform, small_uniform)
        assert outcome.result.same_distances_as(ground_truth(small_uniform, small_uniform, 3))

    @pytest.mark.parametrize("grouping", ["geometric", "greedy"])
    def test_both_groupings_exact(self, small_uniform, grouping):
        config = PgbjConfig(k=3, num_reducers=4, num_pivots=10, grouping=grouping)
        outcome = PGBJ(config).run(small_uniform, small_uniform)
        assert outcome.result.same_distances_as(ground_truth(small_uniform, small_uniform, 3))

    def test_exact_under_l1_metric(self, small_uniform):
        from repro.core import KnnJoinResult, brute_force_knn_join, get_metric

        config = PgbjConfig(k=3, num_reducers=3, num_pivots=8, metric_name="l1")
        outcome = PGBJ(config).run(small_uniform, small_uniform)
        metric = get_metric("l1")
        truth = KnnJoinResult.from_dict(
            3,
            brute_force_knn_join(
                metric, small_uniform.points, small_uniform.ids,
                small_uniform.points, small_uniform.ids, 3,
            ),
        )
        assert outcome.result.same_distances_as(truth)

    def test_phase_breakdown_has_paper_names(self, small_uniform):
        from repro.mapreduce import Cluster

        outcome = PGBJ(PgbjConfig(k=3, num_reducers=3, num_pivots=8)).run(
            small_uniform, small_uniform
        )
        phases = outcome.phase_seconds(Cluster(num_nodes=3))
        assert set(phases) == {
            "pivot_selection",
            "data_partitioning",
            "index_merging",
            "partition_grouping",
            "knn_join",
        }
        assert all(seconds >= 0 for seconds in phases.values())

    def test_shuffle_is_r_plus_alpha_s_records(self, small_uniform):
        """PGBJ job-2 shuffle = |R| + RP(S) records (no R replication)."""
        outcome = PGBJ(PgbjConfig(k=3, num_reducers=4, num_pivots=10)).run(
            small_uniform, small_uniform
        )
        join_stats = outcome.job_stats[1]
        assert join_stats.shuffle_records == len(small_uniform) + outcome.replication_of_s()

    def test_replication_at_most_broadcast(self, small_uniform):
        outcome = PGBJ(PgbjConfig(k=3, num_reducers=4, num_pivots=10)).run(
            small_uniform, small_uniform
        )
        assert outcome.replication_of_s() <= 4 * len(small_uniform)
        assert outcome.avg_replication_of_s() >= 1.0

    def test_deterministic(self, small_uniform):
        config = PgbjConfig(k=3, num_reducers=3, num_pivots=8, seed=5)
        a = PGBJ(config).run(small_uniform, small_uniform)
        b = PGBJ(config).run(small_uniform, small_uniform)
        assert a.result.same_distances_as(b.result)
        assert a.shuffle_bytes() == b.shuffle_bytes()
        assert a.distance_pairs == b.distance_pairs

    def test_k_exceeding_s_rejected(self, small_uniform):
        with pytest.raises(ValueError, match="exceeds"):
            PGBJ(PgbjConfig(k=1000, num_pivots=8)).run(small_uniform, small_uniform)

    def test_dimension_mismatch_rejected(self, small_uniform, small_osm):
        with pytest.raises(ValueError, match="dimension"):
            PGBJ(PgbjConfig(k=2, num_pivots=8)).run(small_uniform, small_osm)


class TestPbj:
    def test_exact(self, small_uniform):
        outcome = PBJ(BlockJoinConfig(k=5, num_reducers=4, num_pivots=8)).run(
            small_uniform, small_uniform
        )
        assert outcome.result.same_distances_as(ground_truth(small_uniform, small_uniform, 5))

    def test_exact_with_tiny_blocks(self, rng):
        """Blocks smaller than k force the infinite-theta partial path."""
        from repro.core import Dataset

        data = Dataset(rng.random((30, 2)))
        outcome = PBJ(BlockJoinConfig(k=9, num_reducers=9, num_pivots=4)).run(data, data)
        assert outcome.result.same_distances_as(ground_truth(data, data, 9))

    def test_three_jobs_run(self, small_uniform):
        outcome = PBJ(BlockJoinConfig(k=3, num_reducers=4, num_pivots=8)).run(
            small_uniform, small_uniform
        )
        assert outcome.job_phase_names == ["data_partitioning", "knn_join", "merge"]

    def test_block_replication_is_sqrt_n(self, small_uniform):
        config = BlockJoinConfig(k=3, num_reducers=9, num_pivots=8)
        outcome = PBJ(config).run(small_uniform, small_uniform)
        assert outcome.replication_of_s() == config.num_blocks * len(small_uniform)


class TestHbrj:
    def test_exact(self, small_uniform):
        outcome = HBRJ(BlockJoinConfig(k=5, num_reducers=4)).run(
            small_uniform, small_uniform
        )
        assert outcome.result.same_distances_as(ground_truth(small_uniform, small_uniform, 5))

    def test_exact_on_clustered_osm(self, small_osm):
        outcome = HBRJ(BlockJoinConfig(k=3, num_reducers=9)).run(small_osm, small_osm)
        assert outcome.result.same_distances_as(ground_truth(small_osm, small_osm, 3))

    def test_no_master_phases(self, small_uniform):
        outcome = HBRJ(BlockJoinConfig(k=3, num_reducers=4)).run(
            small_uniform, small_uniform
        )
        assert outcome.master_phases == {}
        assert outcome.master_distance_pairs == 0

    def test_num_blocks_floor_sqrt(self):
        assert BlockJoinConfig(num_reducers=9).num_blocks == 3
        assert BlockJoinConfig(num_reducers=10).num_blocks == 3
        assert BlockJoinConfig(num_reducers=1).num_blocks == 1


class TestBroadcast:
    def test_exact(self, small_uniform):
        outcome = BroadcastJoin(JoinConfig(k=5, num_reducers=4)).run(
            small_uniform, small_uniform
        )
        assert outcome.result.same_distances_as(ground_truth(small_uniform, small_uniform, 5))

    def test_selectivity_is_one(self, small_uniform):
        """The naive strategy computes every pair exactly once."""
        outcome = BroadcastJoin(JoinConfig(k=3, num_reducers=4)).run(
            small_uniform, small_uniform
        )
        assert outcome.selectivity() == pytest.approx(1.0)

    def test_replication_is_n_copies(self, small_uniform):
        outcome = BroadcastJoin(JoinConfig(k=3, num_reducers=5)).run(
            small_uniform, small_uniform
        )
        assert outcome.replication_of_s() == 5 * len(small_uniform)


class TestFactory:
    def test_make_algorithm(self):
        assert make_algorithm("pgbj", PgbjConfig()).name == "pgbj"
        assert make_algorithm("pbj", BlockJoinConfig()).name == "pbj"
        assert make_algorithm("hbrj", BlockJoinConfig()).name == "hbrj"
        assert make_algorithm("broadcast", JoinConfig()).name == "broadcast"

    def test_wrong_config_type(self):
        with pytest.raises(TypeError):
            make_algorithm("pgbj", JoinConfig())

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_algorithm("mux", JoinConfig())
