"""R-tree substrate: STR bulk loading, insertion, range and best-first kNN.

Built for the H-BRJ baseline (which indexes each reducer's block of ``S``
with an R-tree) and usable standalone.
"""

from .node import InternalNode, LeafNode, Node
from .rect import Rect
from .rtree import RTree
from .str_bulk import build_str_tree, str_pack_leaves

__all__ = [
    "RTree",
    "Rect",
    "LeafNode",
    "InternalNode",
    "Node",
    "build_str_tree",
    "str_pack_leaves",
]
