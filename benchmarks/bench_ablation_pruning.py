"""Ablation (beyond the paper): PGBJ with its pruning rules disabled.

Quantifies what each of Corollary 1 (hyperplane) and Theorem 2 (ring)
contributes to the computation-selectivity win.
"""

from repro.bench import ablation_pruning_experiment




def test_ablation_pruning(benchmark, exhibit_runner):
    result = exhibit_runner(ablation_pruning_experiment)
    both = result.data["both on (paper)"]["selectivity_permille"]
    neither = result.data["both off"]["selectivity_permille"]
    assert both < neither
    # each rule alone also helps over nothing
    assert result.data["no hyperplane"]["selectivity_permille"] < neither
    assert result.data["no ring"]["selectivity_permille"] < neither
