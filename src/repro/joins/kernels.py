"""Reducer-side kNN kernels (paper Algorithm 3, lines 12-25).

The kernel answers, inside one reducer, the kNN of every ``r`` it received
against the S objects it received, using the paper's three pruning levels:

1. scan candidate S-partitions in ascending pivot-distance order, so good
   candidates appear early and ``theta`` tightens fast (line 14);
2. skip a whole partition when the generalized hyperplane lies beyond
   ``theta`` (Corollary 1, line 19);
3. within a partition, examine only the objects whose pivot distance falls in
   the Theorem 2 ring — a contiguous slice of the distance-sorted block
   (lines 21-22).

The same kernel serves PGBJ (bounds from the global summary tables) and PBJ
(bounds recomputed locally over the reducer's random block of S, which is why
PBJ's bounds are looser — the paper's stated reason PBJ trails PGBJ).

Vectorization layout: the scan order over S-partitions depends only on the
*R-partition* (line 14 sorts by ``|p_i, p_jl|``), so the kernel walks
S-partitions in that shared order and evaluates everything for **all rows of
the R-partition block at once** — one hyperplane mask, one batched
``searchsorted`` for the Theorem 2 rings, then one gathered distance pass
over the flat ``(row, ring-member)`` pair list and a padded-matrix k-best
merge — while the per-row ``theta`` values evolve exactly as in the
per-record scan.  Only the pairs the pruning rules admit are ever gathered,
so ``metric.pairs_computed`` (the paper's selectivity numerator) is
unchanged pair for pair.  The seed per-record kernel survives as
:func:`knn_join_kernel_reference`, the oracle for the equivalence tests and
the ``bench_columnar`` micro benchmark.

Inputs arrive either as per-object :class:`~repro.mapreduce.types.ObjectRecord`
values or as columnar :class:`~repro.mapreduce.types.RecordBlock` batches;
:func:`build_partition_blocks` splits a reducer's mixed value list by origin
and groups it per Voronoi cell with array ops only.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.core.distance import Metric
from repro.core.geometry import (
    PRUNE_EPS,
    hyperplane_distances,
    partition_pruned_by_hyperplane,
    ring_slice,
    ring_slices,
)
from repro.core.knn import ReferenceKBestList
from repro.mapreduce.types import ObjectRecord, RecordBlock, group_rows_by

__all__ = [
    "RPartitionBlock",
    "SPartitionBlock",
    "ScratchPool",
    "build_partition_blocks",
    "build_r_blocks",
    "build_s_blocks",
    "local_ring_stats",
    "local_theta",
    "knn_join_kernel",
    "knn_join_kernel_reference",
    "scan_partition_numpy",
]


@dataclass
class RPartitionBlock:
    """The R objects of one Voronoi cell present in a reducer."""

    partition_id: int
    ids: np.ndarray
    points: np.ndarray
    pivot_dists: np.ndarray

    def local_upper(self) -> float:
        """Local ``U``: max pivot distance among the present objects."""
        return float(self.pivot_dists.max())


@dataclass
class SPartitionBlock:
    """The S objects of one Voronoi cell present in a reducer.

    Arrays are sorted ascending by pivot distance (ties by id), so Theorem 2
    rings become contiguous slices.
    """

    partition_id: int
    ids: np.ndarray
    points: np.ndarray
    pivot_dists: np.ndarray

    def __len__(self) -> int:
        return self.ids.shape[0]


def _as_block(values: "RecordBlock | Iterable") -> RecordBlock:
    if isinstance(values, RecordBlock):
        return values
    return RecordBlock.gather(values)


def build_r_blocks(
    records: "RecordBlock | Iterable[ObjectRecord | RecordBlock]",
) -> dict[int, RPartitionBlock]:
    """Group a reducer's R records by Voronoi cell (columnar)."""
    block = _as_block(records)
    return {
        pid: RPartitionBlock(
            partition_id=pid,
            ids=block.object_ids[rows],
            points=block.points[rows],
            pivot_dists=block.pivot_distances[rows],
        )
        for pid, rows in group_rows_by(block.partition_ids)
    }


def build_s_blocks(
    records: "RecordBlock | Iterable[ObjectRecord | RecordBlock]",
) -> dict[int, SPartitionBlock]:
    """Group a reducer's S records by cell, sorted by pivot distance."""
    block = _as_block(records)
    blocks: dict[int, SPartitionBlock] = {}
    for pid, rows in group_rows_by(block.partition_ids):
        ids = block.object_ids[rows]
        dists = block.pivot_distances[rows]
        order = np.lexsort((ids, dists))
        blocks[pid] = SPartitionBlock(
            partition_id=pid,
            ids=ids[order],
            points=block.points[rows][order],
            pivot_dists=dists[order],
        )
    return blocks


def build_partition_blocks(
    values: Iterable,
) -> tuple[dict[int, RPartitionBlock], dict[int, SPartitionBlock]]:
    """Split a reducer's mixed value list by origin and group per cell.

    Accepts whatever the shuffle delivered — per-object records, columnar
    blocks, or a mix — and returns ``(r_blocks, s_blocks)`` built with array
    operations only (no per-record Python objects on the block path).
    """
    block = _as_block(values)
    r_rows = np.flatnonzero(block.is_r)
    s_rows = np.flatnonzero(~block.is_r)
    return build_r_blocks(block.take(r_rows)), build_s_blocks(block.take(s_rows))


def local_ring_stats(s_blocks: dict[int, SPartitionBlock]) -> dict[int, tuple[float, float]]:
    """Per-cell ``(L, U)`` over the objects actually present (PBJ bounds)."""
    return {
        pid: (float(block.pivot_dists[0]), float(block.pivot_dists[-1]))
        for pid, block in s_blocks.items()
    }


def local_theta(
    u_ri: float,
    pdm_row: np.ndarray,
    s_blocks: dict[int, SPartitionBlock],
    k: int,
) -> float:
    """Algorithm 1 evaluated over a reducer's local S blocks.

    Used by PBJ, whose reducers see only a random ``1/sqrt(N)`` slice of S:
    the theta bound must be recomputed from what is present.  Returns ``inf``
    when the local blocks hold fewer than k objects (the merge job resolves
    such partial candidate lists).

    Vectorized: each block contributes upper bounds
    ``u_ri + |p_i, p_j| + |s, p_j|`` for its k nearest-to-pivot objects
    (the blocks are pivot-distance sorted); the k-th smallest of the pooled
    bounds is the theta — one ``np.partition`` instead of a Python heap.
    """
    bounds = [
        (u_ri + float(pdm_row[pid])) + block.pivot_dists[:k]
        for pid, block in s_blocks.items()
    ]
    if not bounds:
        return float("inf")
    pooled = np.concatenate(bounds)
    if pooled.size < k:
        return float("inf")
    return float(np.partition(pooled, k - 1)[k - 1])


#: sentinel id for unfilled k-best slots — sorts after every real id
_ID_SENTINEL = np.iinfo(np.int64).max

#: gathered pairs per batch — bounds the flat scan's peak memory
_PAIR_CHUNK = 1 << 19


class ScratchPool:
    """Reusable work arrays for the kernel scans, keyed by shape bucket.

    A reducer performs thousands of gathered scans per job, each needing the
    same few work arrays (two ``(pairs, d)`` gather buffers, the k-best merge
    matrices); allocating them per scan dominates small-batch overhead.  The
    pool hands out views over buffers whose leading dimension is rounded up
    to a power of two, so scans of similar size share storage instead of
    churning the allocator.

    Buffers taken since the last :meth:`reset` stay checked out (a scan may
    hold several live at once); ``reset()`` returns them all to the free
    lists.  Callers must treat a buffer as dead once the scan that took it
    completes — the contract ``_scan_segments`` already satisfies by never
    holding state across calls.
    """

    def __init__(self) -> None:
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._taken: list[tuple[tuple, np.ndarray]] = []

    def reset(self) -> None:
        """Return every outstanding buffer to its free list."""
        for key, buf in self._taken:
            self._free.setdefault(key, []).append(buf)
        self._taken.clear()

    def take(self, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A writable ``shape`` view over a pooled buffer (contents stale)."""
        rows = int(shape[0])
        bucket = max(64, 1 << max(0, rows - 1).bit_length())
        key = (np.dtype(dtype), tuple(int(n) for n in shape[1:]), bucket)
        stack = self._free.get(key)
        buf = stack.pop() if stack else np.empty((bucket, *key[1]), dtype=key[0])
        self._taken.append((key, buf))
        return buf[:rows]


def _chunk_bounds(lengths: np.ndarray, cap: int) -> Iterator[tuple[int, int]]:
    """Split segment list ``lengths`` into ``[lo, hi)`` runs of <= cap pairs.

    A single segment larger than the cap still forms its own (oversized)
    chunk — segments are never split, so per-row results cannot change.
    """
    cumulative = np.cumsum(lengths)
    lo = 0
    consumed = 0
    while lo < lengths.size:
        hi = int(np.searchsorted(cumulative, consumed + cap, side="right"))
        if hi <= lo:
            hi = lo + 1
        yield lo, hi
        consumed = int(cumulative[hi - 1])
        lo = hi


def _scan_segments(
    metric: Metric,
    k: int,
    r_points: np.ndarray,
    s_block: SPartitionBlock,
    rows: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
    best_dists: np.ndarray,
    best_ids: np.ndarray,
    theta: np.ndarray,
    scratch: ScratchPool | None = None,
) -> None:
    """One gathered scan: ring slices of one S-partition for many R rows.

    Builds the flat ``(row, s-index)`` pair list covering exactly the ring
    members each row admits, computes all distances in one counted call, then
    folds each row's candidates into its running k-best matrix:

    * discard candidates strictly beyond their row's current k-th distance —
      the row already holds k candidates at or below it, so such a candidate
      can never enter the k-best (ties survive: an equal distance with a
      smaller id still displaces);
    * per-segment top-``min(survivors, k)`` via one three-key lexsort over
      the (now few) survivors;
    * merge with the current k-best (``inf``/sentinel-padded), ordering each
      row by (distance, id) with two stable row-wise argsorts — the same
      lexicographic tie-breaking as ``np.lexsort``, so results match the
      per-record :class:`~repro.core.knn.ReferenceKBestList` exactly.

    Updates ``best_dists``/``best_ids``/``theta`` in place.  ``scratch``
    supplies the gather and merge work arrays (pooled across scans within a
    job); values written through it are identical to the fresh-allocation
    code it replaced, so results are unchanged.
    """
    if scratch is None:
        scratch = ScratchPool()
    scratch.reset()
    offsets = np.cumsum(lengths) - lengths
    total = int(offsets[-1] + lengths[-1])
    # flat pair list: seg_of_pair repeats each segment, col walks its slice
    col = np.arange(total) - np.repeat(offsets - starts, lengths)
    seg_of_pair = np.repeat(np.arange(rows.size), lengths)
    r_sub = r_points[rows]  # small, cache-resident gather source
    dims = r_points.shape[1]
    r_gather = np.take(r_sub, seg_of_pair, axis=0, out=scratch.take((total, dims)))
    s_gather = np.take(s_block.points, col, axis=0, out=scratch.take((total, dims)))
    flat_dists = metric.pair_distances(r_gather, s_gather)

    kth_per_segment = best_dists[rows, k - 1]
    keep = np.flatnonzero(flat_dists <= kth_per_segment[seg_of_pair])
    if keep.size == 0:
        # every candidate lost to the current k-best; the reference's theta
        # update is a no-op here too (theta <= kth + eps already holds)
        return
    seg_kept = seg_of_pair[keep]
    dists_kept = flat_dists[keep]
    ids_kept = s_block.ids[col[keep]]

    # (segment, distance, id) order => contiguous survivor runs, best first
    order = np.lexsort((ids_kept, dists_kept, seg_kept))
    survivors = np.bincount(seg_kept, minlength=rows.size)
    active = np.flatnonzero(survivors)
    take = np.minimum(survivors[active], k)
    kept_offsets = np.cumsum(survivors) - survivors
    slot = np.arange(int(take.sum())) - np.repeat(np.cumsum(take) - take, take)
    picked = order[np.repeat(kept_offsets[active], take) + slot]

    num_active = active.size
    new_dists = scratch.take((num_active, k))
    new_dists.fill(np.inf)
    new_ids = scratch.take((num_active, k), dtype=np.int64)
    new_ids.fill(_ID_SENTINEL)
    scatter_row = np.repeat(np.arange(num_active), take)
    new_dists[scatter_row, slot] = dists_kept[picked]
    new_ids[scatter_row, slot] = ids_kept[picked]

    updated = rows[active]
    merged_dists = scratch.take((num_active, 2 * k))
    merged_dists[:, :k] = best_dists[updated]
    merged_dists[:, k:] = new_dists
    merged_ids = scratch.take((num_active, 2 * k), dtype=np.int64)
    merged_ids[:, :k] = best_ids[updated]
    merged_ids[:, k:] = new_ids
    lane = np.arange(num_active)[:, None]
    by_id = np.argsort(merged_ids, axis=1, kind="stable")
    by_dist = np.argsort(merged_dists[lane, by_id], axis=1, kind="stable")
    # compose the two stable passes (== per-row lexsort by (distance, id))
    # and truncate to k before gathering the final columns
    keep_perm = by_id[lane, by_dist[:, :k]]
    best_dists[updated] = merged_dists[lane, keep_perm]
    best_ids[updated] = merged_ids[lane, keep_perm]
    # theta tightens only once a row's list is full: an unfilled k-th slot is
    # +inf, so np.minimum leaves those rows' theta untouched
    theta[updated] = np.minimum(theta[updated], best_dists[updated, k - 1] + PRUNE_EPS)


def scan_partition_numpy(
    metric: Metric,
    k: int,
    r_points: np.ndarray,
    s_block: SPartitionBlock,
    rows: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
    best_dists: np.ndarray,
    best_ids: np.ndarray,
    theta: np.ndarray,
    scratch: ScratchPool | None = None,
) -> None:
    """The numpy per-partition scan: strip-mined gathered batches.

    This is the pluggable unit of :func:`knn_join_kernel` — one S-partition's
    admitted ring slices for all surviving R rows, folded into the running
    k-best state.  Kernel providers substitute compiled equivalents; every
    implementation must fold exactly the ``sum(lengths)`` admitted pairs
    (counted through the metric) and leave bit-identical
    ``best_dists``/``best_ids``/``theta``.
    """
    # strip-mine long slices: after the first strip every row's k-th
    # distance is a real bound, so later strips mostly fail the
    # cheap prefilter instead of flooding the candidate sort.  The
    # k-best fold is order-independent, every admitted pair is still
    # computed — results and pair counts are unchanged.
    strip = max(128, 16 * k)
    longest = int(lengths.max())
    if longest <= strip and int(lengths.sum()) <= _PAIR_CHUNK:
        # dense-pivot common case: one batch, no strip bookkeeping
        _scan_segments(
            metric, k, r_points, s_block, rows, starts, lengths,
            best_dists, best_ids, theta, scratch,
        )
        return
    offset = 0
    while offset < longest:
        in_strip = np.flatnonzero(lengths > offset)
        strip_rows = rows[in_strip]
        strip_starts = starts[in_strip] + offset
        strip_lengths = np.minimum(lengths[in_strip] - offset, strip)
        for lo, hi in _chunk_bounds(strip_lengths, _PAIR_CHUNK):
            _scan_segments(
                metric,
                k,
                r_points,
                s_block,
                strip_rows[lo:hi],
                strip_starts[lo:hi],
                strip_lengths[lo:hi],
                best_dists,
                best_ids,
                theta,
                scratch,
            )
        offset += strip


def knn_join_kernel(
    metric: Metric,
    k: int,
    r_blocks: dict[int, RPartitionBlock],
    s_blocks: dict[int, SPartitionBlock],
    thetas: dict[int, float],
    ring_stats: dict[int, tuple[float, float]],
    pivot_points: np.ndarray,
    pivot_dist_matrix: np.ndarray,
    use_hyperplane_pruning: bool = True,
    use_ring_pruning: bool = True,
    scan=None,
    scratch: ScratchPool | None = None,
) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
    """Run Algorithm 3's reduce phase; yields ``(r_id, neighbor_ids, dists)``.

    Bit-identical to :func:`knn_join_kernel_reference` (same neighbor lists,
    same ``metric.pairs_computed``): every per-row pruning decision and ring
    slice is the same, every admitted pair's distance is computed with the
    same IEEE operations — only evaluated batched, one S-partition at a time
    across all rows of the R-partition block.

    Parameters
    ----------
    thetas:
        ``theta_i`` per R-partition (Equation 6); ``inf`` disables the initial
        radius (PBJ blocks smaller than k).
    ring_stats:
        ``(L, U)`` per S-partition for Theorem 2 — global table values for
        PGBJ, local block extremes for PBJ.
    pivot_points, pivot_dist_matrix:
        Pivot coordinates and the ``|p_i, p_j|`` matrix.
    use_hyperplane_pruning, use_ring_pruning:
        Ablation switches (both on reproduces the paper).
    scan:
        The per-partition scan implementation (defaults to
        :func:`scan_partition_numpy`); kernel providers pass their own.
        Every implementation folds the same admitted pairs with the same
        IEEE operations, so the choice never changes results or counts.
    scratch:
        A :class:`ScratchPool` shared across kernel invocations (reducers
        keep one per worker); a private pool is created when omitted.
    """
    if not s_blocks:
        raise ValueError("reducer received R objects but no S objects")
    if scan is None:
        scan = scan_partition_numpy
    if scratch is None:
        scratch = ScratchPool()
    present = sorted(s_blocks)
    present_arr = np.asarray(present, dtype=np.int64)
    present_points = pivot_points[present]
    # Equation 3 is exact only in Euclidean space; other metrics fall back to
    # the generic GH bound inside hyperplane_distance
    euclidean = metric.name == "l2"

    for pid_r in sorted(r_blocks):
        r_block = r_blocks[pid_r]
        num_rows = r_block.ids.shape[0]
        pdm_row = pivot_dist_matrix[pid_r]
        own_dists = r_block.pivot_dists
        num_present = len(present)
        if num_present == 1:
            # low-pivot fast path: a single candidate cell needs no scan
            # order, and (when it is the row's own cell) the hyperplane
            # masks below are skipped wholesale rather than run degenerate
            order = np.zeros(1, dtype=np.intp)
        else:
            # line 14: scan S-partitions in ascending |p_i, p_jl| order
            # (stable, so equidistant cells keep the scan order of sorted())
            order = np.argsort(pdm_row[present_arr], kind="stable")
        # |r, p_j| for every r of the cell and every present S pivot — these
        # are object-pivot pairs and count toward selectivity (Equation 13).
        # With fewer pivots than rows the matrix is filled pivot-by-pivot
        # (one vectorized one-to-many per *pivot* instead of per row): every
        # metric kernel is elementwise symmetric in the difference, so the
        # transposed pass produces bit-identical floats, and the per-call
        # accounting sums to the same ``num_rows * num_present`` pairs.
        if num_present < num_rows:
            dr_to_pivots = np.empty((num_rows, num_present), dtype=np.float64)
            for j in range(num_present):
                dr_to_pivots[:, j] = metric.distances(present_points[j], r_block.points)
        else:
            dr_to_pivots = metric.cross_distances(r_block.points, present_points)

        r_points = r_block.points
        theta = np.full(num_rows, thetas[pid_r], dtype=np.float64)
        best_dists = np.full((num_rows, k), np.inf, dtype=np.float64)
        best_ids = np.full((num_rows, k), _ID_SENTINEL, dtype=np.int64)
        for idx in order:
            pid_s = present[int(idx)]
            dist_r_pj = dr_to_pivots[:, idx]
            if use_hyperplane_pruning and pid_s != pid_r:
                # Corollary 1, all rows at once: a row survives unless the
                # hyperplane provably exceeds its current theta
                gaps = hyperplane_distances(
                    own_dists, dist_r_pj, float(pdm_row[pid_s]), euclidean
                )
                rows = np.flatnonzero(gaps <= theta + PRUNE_EPS)
                if rows.size == 0:
                    continue
            else:
                rows = np.arange(num_rows)
            block = s_blocks[pid_s]
            if use_ring_pruning:
                lower, upper = ring_stats[pid_s]
                sorted_dists = block.pivot_dists
                if (
                    sorted_dists[0] >= lower - PRUNE_EPS
                    and sorted_dists[-1] <= upper + PRUNE_EPS
                    and not np.isfinite(theta[rows]).any()
                ):
                    # unbounded-theta fast path (first partitions of a PBJ
                    # block smaller than k): every ring degenerates to the
                    # whole slice — two scalar comparisons replace the two
                    # batched searchsorteds, with provably equal slices
                    starts = np.zeros(rows.size, dtype=np.intp)
                    stops = np.full(rows.size, len(block), dtype=np.intp)
                else:
                    starts, stops = ring_slices(
                        sorted_dists, lower, upper, dist_r_pj[rows], theta[rows]
                    )
            else:
                starts = np.zeros(rows.size, dtype=np.intp)
                stops = np.full(rows.size, len(block), dtype=np.intp)
            lengths = stops - starts
            occupied = np.flatnonzero(lengths > 0)
            if occupied.size == 0:
                continue
            scan(
                metric,
                k,
                r_points,
                block,
                rows[occupied],
                starts[occupied],
                lengths[occupied],
                best_dists,
                best_ids,
                theta,
                scratch,
            )
        for row in range(num_rows):
            # unfilled slots are +inf / sentinel padding at the tail
            count = int(np.searchsorted(best_dists[row], np.inf, side="left"))
            yield (
                int(r_block.ids[row]),
                best_ids[row, :count].copy(),
                best_dists[row, :count].copy(),
            )


def knn_join_kernel_reference(
    metric: Metric,
    k: int,
    r_blocks: dict[int, RPartitionBlock],
    s_blocks: dict[int, SPartitionBlock],
    thetas: dict[int, float],
    ring_stats: dict[int, tuple[float, float]],
    pivot_points: np.ndarray,
    pivot_dist_matrix: np.ndarray,
    use_hyperplane_pruning: bool = True,
    use_ring_pruning: bool = True,
) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
    """The seed per-record kernel, kept verbatim as the correctness oracle.

    One R point at a time, scalar pruning tests, full-lexsort k-best list.
    The equivalence tests and ``benchmarks/bench_columnar.py`` hold
    :func:`knn_join_kernel` to byte-identical outputs and pair counts against
    this implementation.
    """
    if not s_blocks:
        raise ValueError("reducer received R objects but no S objects")
    present = sorted(s_blocks)
    present_points = pivot_points[present]
    euclidean = metric.name == "l2"

    for pid_r in sorted(r_blocks):
        r_block = r_blocks[pid_r]
        theta_i = thetas[pid_r]
        pdm_row = pivot_dist_matrix[pid_r]
        order = sorted(range(len(present)), key=lambda idx: pdm_row[present[idx]])
        dr_to_pivots = metric.cross_distances(r_block.points, present_points)

        for row in range(r_block.ids.shape[0]):
            kbest = ReferenceKBestList(k)
            theta = theta_i
            dist_r_own = float(r_block.pivot_dists[row])
            for idx in order:
                pid_s = present[idx]
                dist_r_pj = float(dr_to_pivots[row, idx])
                if (
                    use_hyperplane_pruning
                    and pid_s != pid_r
                    and partition_pruned_by_hyperplane(
                        dist_r_own, dist_r_pj, float(pdm_row[pid_s]), theta, euclidean
                    )
                ):
                    continue  # Corollary 1 discards the whole cell
                block = s_blocks[pid_s]
                if use_ring_pruning and np.isfinite(theta):
                    lower, upper = ring_stats[pid_s]
                    start, stop = ring_slice(
                        block.pivot_dists, lower, upper, dist_r_pj, theta
                    )
                else:
                    start, stop = 0, len(block)
                if start >= stop:
                    continue
                dists = metric.distances(r_block.points[row], block.points[start:stop])
                kbest.update(dists, block.ids[start:stop])
                if kbest.is_full():
                    theta = min(theta, kbest.theta + PRUNE_EPS)
            neighbor_ids, neighbor_dists = kbest.as_arrays()
            yield int(r_block.ids[row]), neighbor_ids, neighbor_dists
