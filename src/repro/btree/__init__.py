"""B+-tree substrate (backing the iDistance index, paper refs [19, 20, 9])."""

from .btree import BPlusTree
from .node import InternalNode, LeafNode

__all__ = ["BPlusTree", "LeafNode", "InternalNode"]
