"""Static analysis for the repository's task-code contracts (``repro-lint``).

Every layer of this reproduction rests on one implicit invariant of the
paper's MapReduce design: task code is **deterministic** (re-running an
attempt reproduces its emissions bit for bit — what the cross-engine,
spill, chaos and provider equivalence suites assert dynamically) and
**shippable** (job specs survive pickling to pooled workers today, remote
hosts tomorrow).  This package checks that invariant statically, at review
time, instead of per-dataset at run time:

* :mod:`.model` classifies *task code structurally* — Mapper/Reducer/
  Partitioner subclasses, kernel-provider primitives, ``@njit`` kernels and
  plan-builder closures — so new joins inherit enforcement for free;
* :mod:`.rules` ships the opening rule set (DET/PKL/RES/ACC);
* :mod:`.registry` makes rules addressable (codes, categories,
  ``--select``/``--ignore``), mirroring the join registry;
* :mod:`.engine` runs rules and applies ``# repro-lint: disable=CODE``
  suppressions;
* :mod:`.cli` is the ``repro-lint`` / ``python -m repro.analysis`` front
  end CI's ``static-analysis`` leg invokes (exit 0 clean / 1 findings /
  2 usage error).
"""

from .engine import analyze_file, analyze_paths, analyze_source, select_rules
from .findings import Finding
from .model import ModuleModel, TaskRegion
from .registry import RULES, RuleSpec, available_rules, get_rule, register_rule

__all__ = [
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "select_rules",
    "Finding",
    "ModuleModel",
    "TaskRegion",
    "RULES",
    "RuleSpec",
    "available_rules",
    "get_rule",
    "register_rule",
]
